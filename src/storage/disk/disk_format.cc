#include "storage/disk/disk_format.h"

#include <cstring>

#include "storage/disk/crc32c.h"

namespace corona::disk {
namespace {

constexpr std::uint8_t kSegmentMagic[4] = {'C', 'S', 'G', '1'};
constexpr std::uint8_t kCheckpointMagic[4] = {'C', 'C', 'K', '1'};
constexpr std::uint8_t kMetaMagic[4] = {'C', 'L', 'M', '1'};

void put_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64le(Bytes& out, std::uint64_t v) {
  put_u32le(out, static_cast<std::uint32_t>(v));
  put_u32le(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32le(p)) |
         static_cast<std::uint64_t>(get_u32le(p + 4)) << 32;
}

}  // namespace

void append_segment_header(Bytes& out, std::uint64_t base_index) {
  const std::size_t start = out.size();
  out.insert(out.end(), kSegmentMagic, kSegmentMagic + 4);
  put_u64le(out, base_index);
  const std::uint32_t crc = crc32c(out.data() + start, 12);
  put_u32le(out, crc);
}

void append_record(Bytes& out, BytesView payload) {
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32le(out, crc32c(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

SegmentScan scan_segment(BytesView buf) {
  SegmentScan scan;
  if (buf.size() < kSegmentHeaderBytes ||
      std::memcmp(buf.data(), kSegmentMagic, 4) != 0 ||
      get_u32le(buf.data() + 12) != crc32c(buf.data(), 12)) {
    scan.truncated = buf.size() > 0;
    return scan;  // header unreadable: the segment contributes nothing
  }
  scan.header_ok = true;
  scan.base_index = get_u64le(buf.data() + 4);
  std::size_t pos = kSegmentHeaderBytes;
  while (pos < buf.size()) {
    if (buf.size() - pos < kRecordHeaderBytes) break;  // torn header
    const std::uint32_t len = get_u32le(buf.data() + pos);
    const std::uint32_t crc = get_u32le(buf.data() + pos + 4);
    if (len > kMaxRecordBytes) break;                   // garbage length
    if (buf.size() - pos - kRecordHeaderBytes < len) break;  // torn payload
    const std::uint8_t* payload = buf.data() + pos + kRecordHeaderBytes;
    if (crc32c(payload, len) != crc) break;             // bit rot / splice
    scan.records.emplace_back(payload, payload + len);
    pos += kRecordHeaderBytes + len;
  }
  scan.valid_bytes = pos;
  scan.truncated = pos != buf.size();
  return scan;
}

Bytes encode_checkpoint_file(const std::string& key, BytesView blob) {
  Bytes body;
  put_u32le(body, static_cast<std::uint32_t>(key.size()));
  body.insert(body.end(), key.begin(), key.end());
  body.insert(body.end(), blob.begin(), blob.end());

  Bytes out;
  out.insert(out.end(), kCheckpointMagic, kCheckpointMagic + 4);
  put_u32le(out, crc32c(body));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<CheckpointFile> decode_checkpoint_file(BytesView buf) {
  constexpr std::size_t kPrefix = 8;  // magic + crc
  if (buf.size() < kPrefix + 4 ||
      std::memcmp(buf.data(), kCheckpointMagic, 4) != 0) {
    return std::nullopt;
  }
  const std::uint32_t crc = get_u32le(buf.data() + 4);
  const std::uint8_t* body = buf.data() + kPrefix;
  const std::size_t body_len = buf.size() - kPrefix;
  if (crc32c(body, body_len) != crc) return std::nullopt;
  const std::uint32_t key_len = get_u32le(body);
  if (key_len > body_len - 4) return std::nullopt;
  CheckpointFile f;
  f.key.assign(body + 4, body + 4 + key_len);
  f.blob.assign(body + 4 + key_len, body + body_len);
  return f;
}

Bytes encode_log_meta(std::uint64_t start_index) {
  Bytes out;
  out.insert(out.end(), kMetaMagic, kMetaMagic + 4);
  put_u64le(out, start_index);
  put_u32le(out, crc32c(out.data() + 4, 8));
  return out;
}

std::optional<std::uint64_t> decode_log_meta(BytesView buf) {
  if (buf.size() != kMetaFileBytes ||
      std::memcmp(buf.data(), kMetaMagic, 4) != 0 ||
      get_u32le(buf.data() + 12) != crc32c(buf.data() + 4, 8)) {
    return std::nullopt;
  }
  return get_u64le(buf.data() + 4);
}

}  // namespace corona::disk
