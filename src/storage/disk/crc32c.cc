#include "storage/disk/crc32c.h"

#include <array>

namespace corona::disk {
namespace {

// Reflected CRC32C polynomial (0x1EDC6F41 reversed).
constexpr std::uint32_t kPoly = 0x82f63b78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(const std::uint8_t* data, std::size_t n,
                     std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace corona::disk
