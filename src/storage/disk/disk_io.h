// POSIX file primitives for the durable backend — the ONLY place in the
// tree that opens files for durability (enforced by corona-lint's
// raw-file-io rule; see docs/ANALYSIS.md).
//
// Durability discipline:
//   * appends go through an fd kept open per active segment; fsync makes
//     them durable;
//   * whole-file replacement is write-temp + fsync(temp) + rename + fsync
//     of the containing directory, so the file is either the old bytes or
//     the new bytes;
//   * file creation/deletion is followed by an fsync of the directory,
//     because a rename or unlink is itself just a dirty directory page.
//
// Error policy: a storage backend that cannot write can no longer keep its
// durability promise, and limping on would acknowledge updates that are not
// stable — the one thing the paper's crash model forbids.  Unrecoverable
// I/O errors are therefore fail-stop: log and abort.  Validation failures
// on *read* (torn records, bad CRCs) are expected after a crash and are
// handled gracefully by recovery instead.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/context.h"

namespace corona::disk {

// Counters shared by every backend object of one DiskEnv.  Monotonic,
// process-lifetime; surfaced through DiskEnv::stats().
struct DiskCounters {
  std::uint64_t fsyncs = 0;            // fdatasync/fsync calls (data + dirs)
  std::uint64_t bytes_written = 0;     // payload + framing bytes written
  std::uint64_t segments_created = 0;
  std::uint64_t segments_deleted = 0;  // reclaimed by log reduction
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;  // blob bytes committed to disk
  std::uint64_t recovered_records = 0;  // records accepted by recovery scans
  std::uint64_t truncated_bytes = 0;   // bytes cut off torn segment tails
  std::uint64_t corrupt_files_dropped = 0;  // checkpoints/segments discarded
};

// ---------------------------------------------------------------------------
// Directory primitives
// ---------------------------------------------------------------------------

// mkdir -p.  Fail-stop on error.
CORONA_BLOCKING void ensure_dir(const std::string& path);
CORONA_BLOCKING bool dir_exists(const std::string& path);
// Sorted names (not paths) of regular files in `dir`; empty if absent.
CORONA_BLOCKING std::vector<std::string> list_files(const std::string& dir);
// Sorted names of subdirectories in `dir`; empty if absent.
CORONA_BLOCKING std::vector<std::string> list_dirs(const std::string& dir);
// fsync the directory itself (durable rename/unlink/create).
CORONA_BLOCKING void sync_dir(const std::string& dir, DiskCounters* counters);
// Deletes a file if present (fail-stop on real errors, ENOENT is fine).
CORONA_BLOCKING void remove_file(const std::string& path);
// rm -rf for a backend-owned subtree.  Fail-stop on error.
CORONA_BLOCKING void remove_tree(const std::string& path);

// ---------------------------------------------------------------------------
// Whole-file read / atomic replace
// ---------------------------------------------------------------------------

// Reads an entire file; nullopt if it does not exist or cannot be read
// (read problems are recovery-path events, never fatal).
[[nodiscard]] CORONA_BLOCKING std::optional<Bytes> read_file(
    const std::string& path);

// Atomically replaces `path` with `content`: temp + fsync + rename + dir
// fsync.  Fail-stop on error.
CORONA_BLOCKING void atomic_write_file(const std::string& path,
                                       BytesView content,
                                       DiskCounters* counters);

// Truncates `path` to `size` bytes and fsyncs it — recovery cutting a torn
// tail off a segment before appending resumes.  Fail-stop on error.
CORONA_BLOCKING void truncate_file(const std::string& path, std::size_t size,
                                   DiskCounters* counters);

// ---------------------------------------------------------------------------
// AppendFile: the active log segment
// ---------------------------------------------------------------------------

// An open file being appended to.  Writes buffer in the kernel page cache;
// sync() makes everything written so far durable.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  // Opens `path` for appending, creating it if needed (the creating open is
  // followed by a directory fsync).  Fail-stop on error.
  [[nodiscard]] CORONA_BLOCKING static AppendFile open(const std::string& path,
                                                       DiskCounters* counters);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Appends all of `data`.  Fail-stop on error.
  CORONA_BLOCKING void write(BytesView data);
  // fdatasync.  Fail-stop on error.
  CORONA_BLOCKING void sync();
  CORONA_BLOCKING void close();

 private:
  int fd_ = -1;
  std::string path_;
  DiskCounters* counters_ = nullptr;
};

}  // namespace corona::disk
