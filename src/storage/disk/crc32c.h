// CRC32C (Castagnoli) checksums for on-disk records.
//
// Every length-prefixed record in a log segment and every checkpoint file
// carries a CRC32C over its payload, so recovery can distinguish "the tail
// the crash tore" from "a record that made it to the platter".  CRC32C is
// the storage-stack standard (iSCSI, ext4, Btrfs, LevelDB) because its
// polynomial detects the short burst errors torn sector writes produce.
//
// Software table-driven implementation — portable, no SSE4.2 dependency;
// the log's bandwidth is bounded by fsync, not by checksumming.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace corona::disk {

// CRC32C of `data`, with LevelDB-style init/finalize (bit-inverted in and
// out), starting from `seed` (pass the running value to extend a checksum).
std::uint32_t crc32c(const std::uint8_t* data, std::size_t n,
                     std::uint32_t seed = 0);
inline std::uint32_t crc32c(BytesView data, std::uint32_t seed = 0) {
  return crc32c(data.data(), data.size(), seed);
}

}  // namespace corona::disk
