// Durable segmented record log implementing the StableLog contract
// (storage/backend.h) against real files.
//
// Layout of one log directory (one per group, under <data>/groups/<id>/):
//   log.meta                    first live logical index (drop_prefix floor)
//   seg-00000000000000000000.log  segments, named by the logical index of
//   seg-00000000000000000042.log  their first record (fixed-width decimal so
//   ...                           lexicographic order is logical order)
//
// Contract mapping:
//   * append() buffers the record in memory — visible to the live process at
//     once, on disk not at all.  Process death at this point loses exactly
//     the unflushed tail, which is the contract's crash() semantics for free.
//   * flush() frames every buffered record (disk_format.h), appends them to
//     the active segment (rotating at segment_bytes), and fdatasyncs once —
//     one device sync per commit group, the same group-commit accounting the
//     in-memory StableLog reports to the sim disk.
//   * drop_prefix(n) persists the new start index to log.meta FIRST (atomic
//     replace), then deletes wholly-covered segments.  A crash between the
//     two steps leaves dead segments that the next open skips (meta floor)
//     and deletes.  A partially-covered segment stays; its covered records
//     are filtered out at open by the meta floor.
//
// Recovery (the constructor) scans segments in name order, accepting records
// until the first invalid byte — torn header, bad length, CRC mismatch —
// then truncates the torn tail in place and discards any later segment
// (strict truncation, mirroring net::FrameDecoder's teardown idiom).  A
// segment whose base index does not chain onto the previous segment's end is
// discarded too: it is unreachable garbage from an interrupted reduction.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "storage/backend.h"
#include "storage/disk/disk_io.h"
#include "util/bytes.h"

namespace corona::disk {

class DiskLog final : public LogBackend {
 public:
  // Opens (creating if absent) the log rooted at `dir` and recovers its
  // durable records.  `counters` (owned by the DiskEnv) must outlive this.
  CORONA_BLOCKING DiskLog(std::string dir, std::size_t segment_bytes,
                          DiskCounters* counters);

  void append(Bytes record) override;
  CORONA_BLOCKING std::size_t flush() override;
  void crash() override;
  CORONA_BLOCKING void drop_prefix(std::size_t n) override;

  std::size_t size() const override { return records_.size(); }
  std::size_t durable_size() const override { return durable_count_; }
  std::size_t unflushed() const override {
    return records_.size() - durable_count_;
  }
  const Bytes& record(std::size_t i) const override { return records_.at(i); }

  std::uint64_t bytes_appended() const override { return bytes_appended_; }
  std::uint64_t bytes_flushed() const override { return bytes_flushed_; }
  std::uint64_t pending_bytes() const override;

  std::uint64_t commits() const override { return commits_; }
  std::uint64_t records_flushed() const override { return records_flushed_; }
  std::size_t max_commit_records() const override {
    return max_commit_records_;
  }

  // Disk-shape introspection (tests, DiskEnv stats).
  std::size_t segment_count() const { return segments_.size(); }
  // Logical index of record(0); records before this were dropped.
  std::uint64_t start_index() const { return base_global_; }

 private:
  struct Segment {
    std::uint64_t base = 0;  // logical index of its first record
    std::size_t count = 0;   // records it holds (flushed only)
    std::size_t bytes = 0;   // current file size
    std::string name;
  };

  std::string seg_path(const Segment& seg) const { return dir_ + "/" + seg.name; }
  CORONA_BLOCKING void recover();
  // Makes sure the active segment can take the record at logical index
  // `next_index`, rotating to a fresh segment when the current one is full.
  void ensure_active(std::uint64_t next_index);
  void start_segment(std::uint64_t base);

  std::string dir_;
  std::size_t segment_bytes_;
  DiskCounters* counters_;

  std::deque<Bytes> records_;      // live view: records_[i] has logical
  std::uint64_t base_global_ = 0;  // index base_global_ + i
  std::size_t durable_count_ = 0;

  std::vector<Segment> segments_;
  AppendFile active_;  // when open, appends to segments_.back()

  std::uint64_t bytes_appended_ = 0;
  std::uint64_t bytes_flushed_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t records_flushed_ = 0;
  std::size_t max_commit_records_ = 0;
};

}  // namespace corona::disk
