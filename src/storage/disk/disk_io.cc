#include "storage/disk/disk_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace corona::disk {
namespace {

[[noreturn]] void die(const char* what, const std::string& path) {
  LOG_ERROR("disk", what, " failed for ", path, ": ", std::strerror(errno));
  std::abort();  // durability cannot be promised past a write failure
}

void bump_fsync(DiskCounters* counters) {
  if (counters != nullptr) ++counters->fsyncs;
}

}  // namespace

void ensure_dir(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0755) != 0 &&
        errno != EEXIST) {
      die("mkdir", prefix);
    }
    if (i < path.size()) prefix.push_back('/');
  }
}

bool dir_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

namespace {

std::vector<std::string> list_entries(const std::string& dir, bool want_dirs) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat((dir + "/" + name).c_str(), &st) != 0) continue;
    if (want_dirs ? S_ISDIR(st.st_mode) : S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());  // deterministic recovery order
  return names;
}

}  // namespace

std::vector<std::string> list_files(const std::string& dir) {
  return list_entries(dir, /*want_dirs=*/false);
}

std::vector<std::string> list_dirs(const std::string& dir) {
  return list_entries(dir, /*want_dirs=*/true);
}

void sync_dir(const std::string& dir, DiskCounters* counters) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) die("open(dir)", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    die("fsync(dir)", dir);
  }
  ::close(fd);
  bump_fsync(counters);
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) die("unlink", path);
}

void remove_tree(const std::string& path) {
  if (!dir_exists(path)) {
    remove_file(path);
    return;
  }
  for (const std::string& name : list_dirs(path)) {
    remove_tree(path + "/" + name);
  }
  for (const std::string& name : list_files(path)) {
    remove_file(path + "/" + name);
  }
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) die("rmdir", path);
}

std::optional<Bytes> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  Bytes out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

void atomic_write_file(const std::string& path, BytesView content,
                       DiskCounters* counters) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) die("open(tmp)", tmp);
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      die("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    die("fsync", tmp);
  }
  ::close(fd);
  bump_fsync(counters);
  if (counters != nullptr) counters->bytes_written += content.size();
  if (::rename(tmp.c_str(), path.c_str()) != 0) die("rename", path);
  const std::size_t slash = path.rfind('/');
  sync_dir(slash == std::string::npos ? "." : path.substr(0, slash), counters);
}

void truncate_file(const std::string& path, std::size_t size,
                   DiskCounters* counters) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) die("open(truncate)", path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    die("ftruncate", path);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    die("fsync(truncate)", path);
  }
  ::close(fd);
  bump_fsync(counters);
}

AppendFile::~AppendFile() { close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)),
      counters_(other.counters_) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    counters_ = other.counters_;
    other.fd_ = -1;
  }
  return *this;
}

AppendFile AppendFile::open(const std::string& path, DiskCounters* counters) {
  AppendFile f;
  const bool existed = ::access(path.c_str(), F_OK) == 0;
  f.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
  if (f.fd_ < 0) die("open(append)", path);
  f.path_ = path;
  f.counters_ = counters;
  if (!existed) {
    const std::size_t slash = path.rfind('/');
    sync_dir(slash == std::string::npos ? "." : path.substr(0, slash),
             counters);
  }
  return f;
}

void AppendFile::write(BytesView data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      die("write", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  if (counters_ != nullptr) counters_->bytes_written += data.size();
}

void AppendFile::sync() {
  if (::fdatasync(fd_) != 0) die("fdatasync", path_);
  bump_fsync(counters_);
}

void AppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace corona::disk
