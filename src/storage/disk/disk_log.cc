#include "storage/disk/disk_log.h"

#include <algorithm>

#include "storage/disk/disk_format.h"

namespace corona::disk {
namespace {

constexpr const char* kMetaName = "log.meta";

std::string segment_name(std::uint64_t base) {
  std::string digits = std::to_string(base);
  return "seg-" + std::string(20 - digits.size(), '0') + digits + ".log";
}

}  // namespace

DiskLog::DiskLog(std::string dir, std::size_t segment_bytes,
                 DiskCounters* counters)
    : dir_(std::move(dir)), segment_bytes_(segment_bytes),
      counters_(counters) {
  ensure_dir(dir_);
  recover();
}

void DiskLog::recover() {
  // The drop_prefix floor: records with a lower logical index are covered by
  // a checkpoint even if their segment still exists.
  std::uint64_t start = 0;
  bool removed_or_truncated = false;
  const std::string meta_path = dir_ + "/" + kMetaName;
  if (auto buf = read_file(meta_path)) {
    if (auto s = decode_log_meta(*buf)) {
      start = *s;
    } else {
      // Corrupt meta degrades to start 0; GroupStore filters resurrected
      // records by sequence number against the checkpoint base.
      remove_file(meta_path);
      removed_or_truncated = true;
      ++counters_->corrupt_files_dropped;
    }
  }

  bool chain_broken = false;
  bool have_prev = false;
  std::uint64_t expect = 0;
  std::uint64_t first_kept = 0;
  for (const std::string& name : list_files(dir_)) {
    if (name.ends_with(".tmp")) {  // interrupted atomic replace
      remove_file(dir_ + "/" + name);
      removed_or_truncated = true;
      continue;
    }
    if (!name.starts_with("seg-") || !name.ends_with(".log")) continue;
    const std::string path = dir_ + "/" + name;
    if (chain_broken) {  // nothing past a torn point survives
      remove_file(path);
      removed_or_truncated = true;
      ++counters_->corrupt_files_dropped;
      continue;
    }
    const auto buf = read_file(path);
    const SegmentScan scan = buf ? scan_segment(*buf) : SegmentScan{};
    if (!scan.header_ok || (have_prev && scan.base_index != expect)) {
      remove_file(path);
      removed_or_truncated = true;
      ++counters_->corrupt_files_dropped;
      chain_broken = true;
      continue;
    }
    if (scan.truncated) {
      counters_->truncated_bytes += buf->size() - scan.valid_bytes;
      truncate_file(path, scan.valid_bytes, counters_);
      removed_or_truncated = true;
      chain_broken = true;  // later segments postdate the torn tail
    }
    Segment seg;
    seg.base = scan.base_index;
    seg.count = scan.records.size();
    seg.bytes = scan.valid_bytes;
    seg.name = name;
    for (std::size_t i = 0; i < scan.records.size(); ++i) {
      if (seg.base + i < start) continue;  // checkpoint-covered prefix
      if (records_.empty()) first_kept = seg.base + i;
      records_.push_back(std::move(scan.records[i]));
      ++counters_->recovered_records;
    }
    expect = seg.base + seg.count;
    have_prev = true;
    segments_.push_back(std::move(seg));
  }

  // The unlinks above are just dirty directory pages until the directory is
  // synced; a later power loss could resurrect a dropped segment, and a
  // resurrected *valid* stale segment can chain onto a rebuilt log once
  // truncation shifts rotation points.
  if (removed_or_truncated) sync_dir(dir_, counters_);

  // records_[i] must carry logical index base_global_ + i.  Normally the
  // kept records start exactly at the meta floor; if the floor is missing
  // (degraded to 0) they start at the first surviving segment's base.
  base_global_ = records_.empty() ? start : first_kept;
  durable_count_ = records_.size();
  for (const Bytes& rec : records_) {
    bytes_appended_ += rec.size();
    bytes_flushed_ += rec.size();
  }
}

void DiskLog::append(Bytes record) {
  bytes_appended_ += record.size();
  records_.push_back(std::move(record));
}

void DiskLog::start_segment(std::uint64_t base) {
  // A flush() commit group can span a rotation, and the end-of-flush sync
  // only reaches the final active segment.  The outgoing segment must hit
  // the device at the hand-off, or a power loss after flush() returns tears
  // the acknowledged batch's records out of the old segment — and recovery's
  // chain-break rule then discards the newer segments too.
  if (active_.is_open()) active_.sync();
  active_.close();
  Segment seg;
  seg.base = base;
  seg.name = segment_name(base);
  active_ = AppendFile::open(seg_path(seg), counters_);
  Bytes header;
  append_segment_header(header, base);
  active_.write(header);
  seg.bytes = header.size();
  segments_.push_back(std::move(seg));
  ++counters_->segments_created;
}

void DiskLog::ensure_active(std::uint64_t next_index) {
  if (active_.is_open()) {
    if (segments_.back().bytes >= segment_bytes_) start_segment(next_index);
    return;
  }
  // Resume appending to the last recovered segment if it has room; its torn
  // tail (if any) was truncated away during recovery.
  if (!segments_.empty() && segments_.back().bytes < segment_bytes_) {
    active_ = AppendFile::open(seg_path(segments_.back()), counters_);
    return;
  }
  start_segment(next_index);
}

std::size_t DiskLog::flush() {
  const std::size_t committed = records_.size() - durable_count_;
  if (committed == 0) return 0;
  for (std::size_t i = durable_count_; i < records_.size(); ++i) {
    ensure_active(base_global_ + i);
    Bytes frame;
    append_record(frame, records_[i]);
    active_.write(frame);
    segments_.back().bytes += frame.size();
    segments_.back().count += 1;
    bytes_flushed_ += records_[i].size();
  }
  active_.sync();  // one device sync for the whole commit group
  durable_count_ = records_.size();
  ++commits_;
  records_flushed_ += committed;
  max_commit_records_ = std::max(max_commit_records_, committed);
  return committed;
}

void DiskLog::crash() {
  // Unflushed records were never written; dropping them from the live view
  // makes it identical to the on-disk (and post-restart) view.
  records_.resize(durable_count_);
}

void DiskLog::drop_prefix(std::size_t n) {
  n = std::min(n, records_.size());
  if (n == 0) return;
  const std::uint64_t new_start = base_global_ + n;
  // Meta first: a crash after this point leaves dead segments that the next
  // open skips (meta floor) and deletes; a crash before it changes nothing.
  atomic_write_file(dir_ + "/" + kMetaName, encode_log_meta(new_start),
                    counters_);
  bool deleted = false;
  while (!segments_.empty() &&
         segments_.front().base + segments_.front().count <= new_start) {
    if (segments_.size() == 1) active_.close();  // front is the active one
    remove_file(seg_path(segments_.front()));
    segments_.erase(segments_.begin());
    ++counters_->segments_deleted;
    deleted = true;
  }
  if (deleted) sync_dir(dir_, counters_);
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(n));
  base_global_ = new_start;
  durable_count_ -= std::min(durable_count_, n);
}

std::uint64_t DiskLog::pending_bytes() const {
  std::uint64_t b = 0;
  for (std::size_t i = durable_count_; i < records_.size(); ++i) {
    b += records_[i].size();
  }
  return b;
}

}  // namespace corona::disk
