// Storage backend interfaces: the contracts behind StableLog/CheckpointStore.
//
// The paper requires every multicast logged "both in memory and on stable
// storage" (§3.2).  The seed implementation modeled stable storage in RAM
// (StableLog / CheckpointStore) with the *timing* of a disk supplied by
// sim::SimDisk; the on-disk backend (src/storage/disk/) implements the same
// contracts against real files.  GroupStore programs against these
// interfaces and a StorageEnv factory, so the protocol layers never know
// which backend they run on — the durability semantics (visible at once,
// durable after flush(), unflushed tail lost on crash) are identical.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/ids.h"

namespace corona {

// Append-only record log with explicit flush and fail-stop crash semantics
// (the StableLog contract).  Appended records are immediately visible to the
// live process, durable only after flush(), and crash() discards the
// unflushed tail the way power loss would.
class LogBackend {
 public:
  virtual ~LogBackend() = default;

  // Appends a record; visible at once, durable after the next flush().
  virtual void append(Bytes record) = 0;

  // Makes every appended record durable.  Returns the number of records the
  // call committed — the size of the commit group (group-commit accounting:
  // one flush covering a batch of appends pays the device's fixed per-op
  // cost once for all of them).  Callers that only want the side effect
  // acknowledge the accounting with `(void)`.
  [[nodiscard]] virtual std::size_t flush() = 0;

  // Fail-stop crash: the unflushed tail vanishes; the live view becomes the
  // durable view.
  virtual void crash() = 0;

  // Drops the first `n` records (log reduction / checkpointing).
  virtual void drop_prefix(std::size_t n) = 0;

  virtual std::size_t size() const = 0;
  virtual std::size_t durable_size() const = 0;
  virtual std::size_t unflushed() const = 0;
  virtual const Bytes& record(std::size_t i) const = 0;

  virtual std::uint64_t bytes_appended() const = 0;
  virtual std::uint64_t bytes_flushed() const = 0;
  // Bytes appended since the last flush (what the next flush would write).
  virtual std::uint64_t pending_bytes() const = 0;

  // Group-commit accounting: flushes that committed at least one record,
  // total records those flushes covered, and the largest commit group.
  virtual std::uint64_t commits() const = 0;
  virtual std::uint64_t records_flushed() const = 0;
  virtual std::size_t max_commit_records() const = 0;
};

// Keyed checkpoint blobs with atomic replace-at-flush semantics (the
// CheckpointStore contract): a crash between put() and flush() leaves the
// previous checkpoint intact, never a torn mix.
class CheckpointBackend {
 public:
  virtual ~CheckpointBackend() = default;

  // Stages a checkpoint blob for `key`; durable after flush().
  virtual void put(const std::string& key, Bytes blob) = 0;
  // Stages removal of `key`.
  virtual void erase(const std::string& key) = 0;

  virtual void flush() = 0;
  virtual void crash() = 0;

  // Live view (what the running process reads back).
  [[nodiscard]] virtual std::optional<Bytes> get(
      const std::string& key) const = 0;
  // Durable view (what recovery after a crash would see).
  [[nodiscard]] virtual std::optional<Bytes> get_durable(
      const std::string& key) const = 0;
  [[nodiscard]] virtual std::vector<std::string> durable_keys() const = 0;

  virtual std::uint64_t bytes_committed() const = 0;
};

// Factory + lifecycle for a storage backend: one checkpoint store plus one
// record log per group.  A StorageEnv outlives every GroupStore constructed
// over it; for a durable env, constructing a fresh GroupStore over the same
// env (or a reopened env on the same directory) is how a restarted process
// recovers.
class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  // Opens (creating if absent) the record log for `id`.  For a durable env
  // an existing log loads its surviving records; the returned backend's
  // durable view is exactly what the last crash left behind.
  [[nodiscard]] virtual std::unique_ptr<LogBackend> open_log(GroupId id) = 0;

  // Reclaims the log's storage (group removal).
  virtual void remove_log(GroupId id) = 0;

  // Ids of logs that already exist in the backend (durable envs only; the
  // in-memory env has no logs that outlive their GroupStore and returns
  // nothing).  GroupStore uses this to reap orphan logs — groups that died
  // before their first checkpoint flush.
  [[nodiscard]] virtual std::vector<GroupId> list_logs() const = 0;

  virtual CheckpointBackend& checkpoints() = 0;
  virtual const CheckpointBackend& checkpoints() const = 0;
};

}  // namespace corona
