// Atomic checkpoint storage.
//
// A checkpoint write replaces the previous checkpoint for its key *atomically
// at flush time* — a crash between put() and flush() leaves the old
// checkpoint intact, never a torn mix.  (A real implementation gets this
// from write-to-temp + rename; the in-memory model keeps staged and
// committed maps.)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/bytes.h"

namespace corona {

class CheckpointStore {
 public:
  // Stages a checkpoint blob for `key`; durable after flush().
  void put(const std::string& key, Bytes blob);
  // Stages removal of `key`.
  void erase(const std::string& key);

  void flush();
  void crash();

  // Live view (what the running process reads back).
  std::optional<Bytes> get(const std::string& key) const;
  // Durable view (what recovery after a crash would see).
  std::optional<Bytes> get_durable(const std::string& key) const;
  std::vector<std::string> durable_keys() const;

  std::uint64_t bytes_committed() const { return bytes_committed_; }

 private:
  enum class Op { kPut, kErase };
  struct Staged {
    Op op;
    Bytes blob;
  };

  std::unordered_map<std::string, Bytes> committed_;
  std::unordered_map<std::string, Staged> staged_;
  std::uint64_t bytes_committed_ = 0;
};

}  // namespace corona
