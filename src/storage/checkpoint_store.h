// Atomic checkpoint storage.
//
// A checkpoint write replaces the previous checkpoint for its key *atomically
// at flush time* — a crash between put() and flush() leaves the old
// checkpoint intact, never a torn mix.  (The real implementation —
// storage/disk/disk_checkpoint.h — gets this from write-to-temp + fsync +
// rename; this in-memory model keeps staged and committed maps.)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "storage/backend.h"
#include "util/bytes.h"

namespace corona {

class CheckpointStore final : public CheckpointBackend {
 public:
  // Stages a checkpoint blob for `key`; durable after flush().
  void put(const std::string& key, Bytes blob) override;
  // Stages removal of `key`.
  void erase(const std::string& key) override;

  void flush() override;
  void crash() override;

  // Live view (what the running process reads back).
  std::optional<Bytes> get(const std::string& key) const override;
  // Durable view (what recovery after a crash would see).
  std::optional<Bytes> get_durable(const std::string& key) const override;
  std::vector<std::string> durable_keys() const override;

  std::uint64_t bytes_committed() const override { return bytes_committed_; }

 private:
  enum class Op { kPut, kErase };
  struct Staged {
    Op op;
    Bytes blob;
  };

  // Ordered maps: flush() iterates staged_ (commit order) and durable_keys()
  // walks committed_ — iteration order is observable, so no hashed maps
  // (corona-lint unordered-container, ANALYSIS.md §4).
  std::map<std::string, Bytes> committed_;
  std::map<std::string, Staged> staged_;
  std::uint64_t bytes_committed_ = 0;
};

}  // namespace corona
