// Per-group durable storage: checkpoint + update log, with recovery.
//
// The server persists, for every group:
//   * a checkpoint — group metadata, a base sequence number, and the state
//     snapshot as of that sequence number (rewritten by log reduction);
//   * an update log — one record per sequenced state message after the base.
//
// A restarted server calls recover() and gets back exactly the durable view:
// persistent groups with their snapshot and every *flushed* update.  Unflushed
// updates are lost, matching the paper's §6 crash model, and are re-fetched
// from original senders by the recovery protocol (src/replica/recovery.*).
//
// GroupStore programs against the backend interfaces (storage/backend.h).
// Default-constructed it runs on the in-memory env (storage/mem_env.h); given
// a StorageEnv* it runs on that backend instead — hand it a disk::DiskEnv and
// the same call sequence becomes genuinely durable.  Constructing a
// GroupStore over a reopened DiskEnv re-attaches every group that has a
// durable checkpoint (and reaps orphan logs of groups that never got one),
// so recover() works identically across a real process restart.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serial/message.h"
#include "storage/backend.h"
#include "util/context.h"
#include "util/ids.h"
#include "util/result.h"

namespace corona {

struct GroupMeta {
  GroupId id;
  std::string name;
  bool persistent = false;

  friend bool operator==(const GroupMeta&, const GroupMeta&) = default;
};

// Durable image of one group, as produced by recovery.
struct RecoveredGroup {
  GroupMeta meta;
  SeqNo base_seq = 0;  // snapshot is the state as of this sequence number
  std::vector<StateEntry> snapshot;
  std::vector<UpdateRecord> updates;  // strictly after base_seq, ascending
};

class GroupStore {
 public:
  // CORONA_BLOCKING below = "blocks when backed by the disk env": callers
  // cannot know which backend they run on, so the durable case is the
  // contract (tools/reach, ANALYSIS.md §12).  append_update and recover
  // only touch memory on every backend and stay unannotated.

  // In-memory backend (owned).
  GroupStore();
  // Runs on `env`, which must outlive this store.  Re-attaches every group
  // with a durable checkpoint, reopening its log.
  CORONA_BLOCKING explicit GroupStore(StorageEnv* env);

  // Creates durable structures for a group (staged; durable at flush()).
  CORONA_BLOCKING void create_group(const GroupMeta& meta,
                                    const std::vector<StateEntry>& initial_state);
  // Durable immediately (flushes the checkpoint erase before reclaiming the
  // group's log storage — the WAL ordering rule, same as install_checkpoint).
  CORONA_BLOCKING void remove_group(GroupId id);
  bool has_group(GroupId id) const;

  // Appends one sequenced update to the group's log.
  void append_update(GroupId id, const UpdateRecord& update);

  // Log reduction (paper §3.2): installs a new checkpoint at `base_seq` with
  // `snapshot`, and drops logged updates with seq <= base_seq.
  CORONA_BLOCKING void install_checkpoint(GroupId id, SeqNo base_seq,
                                          const std::vector<StateEntry>& snapshot);

  // Durability control.  flush() returns the number of log records the call
  // committed across all groups — the commit-group size for this flush.
  // Callers that only want the side effect acknowledge with `(void)`.
  [[nodiscard]] CORONA_BLOCKING std::size_t flush();
  void crash();

  // Reads the durable view back, as a restarted server would.
  [[nodiscard]] std::vector<RecoveredGroup> recover() const;

  // Bytes that the next flush would push to the device; the sim charges this
  // against the disk model.
  std::uint64_t pending_bytes() const;
  // Log records the next flush would commit.
  std::size_t pending_records() const;
  std::uint64_t log_records(GroupId id) const;
  std::uint64_t log_bytes() const;

 private:
  struct PerGroup {
    GroupMeta meta;
    std::unique_ptr<LogBackend> log;
  };

  static std::string checkpoint_key(GroupId id);
  Bytes encode_checkpoint(const GroupMeta& meta, SeqNo base_seq,
                          const std::vector<StateEntry>& snapshot) const;
  CheckpointBackend& checkpoints() { return env_->checkpoints(); }
  const CheckpointBackend& checkpoints() const {
    return static_cast<const StorageEnv*>(env_)->checkpoints();
  }

  std::unique_ptr<StorageEnv> owned_env_;  // set only by the default ctor
  StorageEnv* env_;
  // Ordered map: flush()/crash() iterate it with externally visible side
  // effects (per-log fsync order, reap order), which must not depend on a
  // hash seed (corona-lint unordered-container, ANALYSIS.md §4).
  std::map<GroupId, PerGroup> groups_;
};

}  // namespace corona
