// Per-group durable storage: checkpoint + update log, with recovery.
//
// The server persists, for every group:
//   * a checkpoint — group metadata, a base sequence number, and the state
//     snapshot as of that sequence number (rewritten by log reduction);
//   * an update log — one record per sequenced state message after the base.
//
// A restarted server calls recover() and gets back exactly the durable view:
// persistent groups with their snapshot and every *flushed* update.  Unflushed
// updates are lost, matching the paper's §6 crash model, and are re-fetched
// from original senders by the recovery protocol (src/replica/recovery.*).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "serial/message.h"
#include "storage/checkpoint_store.h"
#include "storage/stable_log.h"
#include "util/ids.h"
#include "util/result.h"

namespace corona {

struct GroupMeta {
  GroupId id;
  std::string name;
  bool persistent = false;

  friend bool operator==(const GroupMeta&, const GroupMeta&) = default;
};

// Durable image of one group, as produced by recovery.
struct RecoveredGroup {
  GroupMeta meta;
  SeqNo base_seq = 0;  // snapshot is the state as of this sequence number
  std::vector<StateEntry> snapshot;
  std::vector<UpdateRecord> updates;  // strictly after base_seq, ascending
};

class GroupStore {
 public:
  // Creates durable structures for a group (staged; durable at flush()).
  void create_group(const GroupMeta& meta,
                    const std::vector<StateEntry>& initial_state);
  void remove_group(GroupId id);
  bool has_group(GroupId id) const;

  // Appends one sequenced update to the group's log.
  void append_update(GroupId id, const UpdateRecord& update);

  // Log reduction (paper §3.2): installs a new checkpoint at `base_seq` with
  // `snapshot`, and drops logged updates with seq <= base_seq.
  void install_checkpoint(GroupId id, SeqNo base_seq,
                          const std::vector<StateEntry>& snapshot);

  // Durability control.  flush() returns the number of log records the call
  // committed across all groups — the commit-group size for this flush.
  std::size_t flush();
  void crash();

  // Reads the durable view back, as a restarted server would.
  std::vector<RecoveredGroup> recover() const;

  // Bytes that the next flush would push to the device; the sim charges this
  // against the disk model.
  std::uint64_t pending_bytes() const;
  // Log records the next flush would commit.
  std::size_t pending_records() const;
  std::uint64_t log_records(GroupId id) const;
  std::uint64_t log_bytes() const;

 private:
  struct PerGroup {
    GroupMeta meta;
    StableLog log;
  };

  static std::string checkpoint_key(GroupId id);
  Bytes encode_checkpoint(const GroupMeta& meta, SeqNo base_seq,
                          const std::vector<StateEntry>& snapshot) const;

  std::unordered_map<GroupId, PerGroup> groups_;
  CheckpointStore checkpoints_;
};

}  // namespace corona
