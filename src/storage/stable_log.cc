#include "storage/stable_log.h"

#include <algorithm>

namespace corona {

void StableLog::append(Bytes record) {
  bytes_appended_ += record.size();
  records_.push_back(std::move(record));
}

std::size_t StableLog::flush() {
  const std::size_t committed = records_.size() - durable_count_;
  for (std::size_t i = durable_count_; i < records_.size(); ++i) {
    bytes_flushed_ += records_[i].size();
  }
  durable_count_ = records_.size();
  if (committed > 0) {
    ++commits_;
    records_flushed_ += committed;
    max_commit_records_ = std::max(max_commit_records_, committed);
  }
  return committed;
}

void StableLog::crash() {
  records_.resize(durable_count_);
}

void StableLog::drop_prefix(std::size_t n) {
  n = std::min(n, records_.size());
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(n));
  durable_count_ -= std::min(durable_count_, n);
}

std::uint64_t StableLog::pending_bytes() const {
  std::uint64_t b = 0;
  for (std::size_t i = durable_count_; i < records_.size(); ++i) {
    b += records_[i].size();
  }
  return b;
}

}  // namespace corona
