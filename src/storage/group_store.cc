#include "storage/group_store.h"

#include <algorithm>
#include <cassert>

#include "serial/decoder.h"
#include "serial/encoder.h"

namespace corona {

std::string GroupStore::checkpoint_key(GroupId id) {
  return "group/" + std::to_string(id.value);
}

Bytes GroupStore::encode_checkpoint(
    const GroupMeta& meta, SeqNo base_seq,
    const std::vector<StateEntry>& snapshot) const {
  Encoder e;
  e.put_u64(meta.id.value);
  e.put_string(meta.name);
  e.put_bool(meta.persistent);
  e.put_u64(base_seq);
  e.put_u32(static_cast<std::uint32_t>(snapshot.size()));
  for (const StateEntry& s : snapshot) {
    e.put_u64(s.object.value);
    e.put_bytes(s.data);
  }
  return e.take();
}

void GroupStore::create_group(const GroupMeta& meta,
                              const std::vector<StateEntry>& initial_state) {
  assert(!groups_.contains(meta.id));
  groups_.emplace(meta.id, PerGroup{meta, StableLog{}});
  checkpoints_.put(checkpoint_key(meta.id),
                   encode_checkpoint(meta, 0, initial_state));
}

void GroupStore::remove_group(GroupId id) {
  groups_.erase(id);
  checkpoints_.erase(checkpoint_key(id));
}

bool GroupStore::has_group(GroupId id) const { return groups_.contains(id); }

void GroupStore::append_update(GroupId id, const UpdateRecord& update) {
  auto it = groups_.find(id);
  assert(it != groups_.end() && "append to unknown group");
  it->second.log.append(encode_update_record(update));
}

void GroupStore::install_checkpoint(GroupId id, SeqNo base_seq,
                                    const std::vector<StateEntry>& snapshot) {
  auto it = groups_.find(id);
  assert(it != groups_.end());
  checkpoints_.put(checkpoint_key(id),
                   encode_checkpoint(it->second.meta, base_seq, snapshot));
  // Drop log records now covered by the checkpoint.
  StableLog& log = it->second.log;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    auto rec = decode_update_record(log.record(i));
    if (!rec.is_ok() || rec.value().seq > base_seq) break;
    ++covered;
  }
  log.drop_prefix(covered);
}

std::size_t GroupStore::flush() {
  checkpoints_.flush();
  std::size_t committed = 0;
  for (auto& [id, g] : groups_) committed += g.log.flush();
  return committed;
}

void GroupStore::crash() {
  checkpoints_.crash();
  for (auto& [id, g] : groups_) g.log.crash();
  // Groups created but never flushed vanish entirely.
  std::vector<GroupId> gone;
  for (const auto& [id, g] : groups_) {
    if (!checkpoints_.get_durable(checkpoint_key(id)).has_value()) {
      gone.push_back(id);
    }
  }
  for (GroupId id : gone) groups_.erase(id);
}

std::vector<RecoveredGroup> GroupStore::recover() const {
  std::vector<RecoveredGroup> out;
  for (const std::string& key : checkpoints_.durable_keys()) {
    const auto blob = checkpoints_.get_durable(key);
    if (!blob) continue;
    Decoder d(*blob);
    RecoveredGroup rg;
    rg.meta.id = GroupId(d.get_u64());
    rg.meta.name = d.get_string();
    rg.meta.persistent = d.get_bool();
    rg.base_seq = d.get_u64();
    const std::uint32_t n = d.get_u32();
    for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
      StateEntry s;
      s.object = ObjectId(d.get_u64());
      s.data = d.get_bytes();
      rg.snapshot.push_back(std::move(s));
    }
    if (!d.ok()) continue;  // torn checkpoint cannot happen; skip defensively

    auto git = groups_.find(rg.meta.id);
    if (git != groups_.end()) {
      const StableLog& log = git->second.log;
      for (std::size_t i = 0; i < log.durable_size(); ++i) {
        auto rec = decode_update_record(log.record(i));
        if (rec.is_ok() && rec.value().seq > rg.base_seq) {
          rg.updates.push_back(std::move(rec).value());
        }
      }
    }
    std::sort(rg.updates.begin(), rg.updates.end(),
              [](const UpdateRecord& a, const UpdateRecord& b) {
                return a.seq < b.seq;
              });
    out.push_back(std::move(rg));
  }
  std::sort(out.begin(), out.end(),
            [](const RecoveredGroup& a, const RecoveredGroup& b) {
              return a.meta.id < b.meta.id;
            });
  return out;
}

std::uint64_t GroupStore::pending_bytes() const {
  std::uint64_t b = 0;
  for (const auto& [id, g] : groups_) b += g.log.pending_bytes();
  return b;
}

std::size_t GroupStore::pending_records() const {
  std::size_t n = 0;
  for (const auto& [id, g] : groups_) n += g.log.unflushed();
  return n;
}

std::uint64_t GroupStore::log_records(GroupId id) const {
  auto it = groups_.find(id);
  return it != groups_.end() ? it->second.log.size() : 0;
}

std::uint64_t GroupStore::log_bytes() const {
  std::uint64_t b = 0;
  for (const auto& [id, g] : groups_) b += g.log.bytes_appended();
  return b;
}

}  // namespace corona
