#include "storage/group_store.h"

#include <algorithm>
#include <cassert>

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "storage/mem_env.h"

namespace corona {
namespace {

// Decodes the fixed prefix of a checkpoint blob (everything recovery needs
// to re-attach a group); nullopt-style failure is signaled via Decoder::ok().
struct CheckpointImage {
  GroupMeta meta;
  SeqNo base_seq = 0;
  std::vector<StateEntry> snapshot;
};

bool decode_checkpoint_blob(const Bytes& blob, CheckpointImage* out) {
  Decoder d(blob);
  out->meta.id = GroupId(d.get_u64());
  out->meta.name = d.get_string();
  out->meta.persistent = d.get_bool();
  out->base_seq = d.get_u64();
  const std::uint32_t n = d.get_u32();
  for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
    StateEntry s;
    s.object = ObjectId(d.get_u64());
    s.data = d.get_bytes();
    out->snapshot.push_back(std::move(s));
  }
  return d.ok();
}

}  // namespace

GroupStore::GroupStore()
    : owned_env_(std::make_unique<MemStorageEnv>()), env_(owned_env_.get()) {}

GroupStore::GroupStore(StorageEnv* env) : env_(env) {
  // Reap orphan logs: groups that died before their first checkpoint flush
  // have no durable identity and must not resurrect under a recycled id.
  for (GroupId id : env_->list_logs()) {
    if (!checkpoints().get_durable(checkpoint_key(id)).has_value()) {
      env_->remove_log(id);
    }
  }
  // Re-attach every group with a durable checkpoint.
  for (const std::string& key : checkpoints().durable_keys()) {
    const auto blob = checkpoints().get_durable(key);
    if (!blob) continue;
    CheckpointImage image;
    if (!decode_checkpoint_blob(*blob, &image)) continue;
    groups_.emplace(image.meta.id,
                    PerGroup{image.meta, env_->open_log(image.meta.id)});
  }
}

std::string GroupStore::checkpoint_key(GroupId id) {
  return "group/" + std::to_string(id.value);
}

Bytes GroupStore::encode_checkpoint(
    const GroupMeta& meta, SeqNo base_seq,
    const std::vector<StateEntry>& snapshot) const {
  Encoder e;
  e.put_u64(meta.id.value);
  e.put_string(meta.name);
  e.put_bool(meta.persistent);
  e.put_u64(base_seq);
  e.put_u32(static_cast<std::uint32_t>(snapshot.size()));
  for (const StateEntry& s : snapshot) {
    e.put_u64(s.object.value);
    e.put_bytes(s.data);
  }
  return e.take();
}

void GroupStore::create_group(const GroupMeta& meta,
                              const std::vector<StateEntry>& initial_state) {
  assert(!groups_.contains(meta.id));
  groups_.emplace(meta.id, PerGroup{meta, env_->open_log(meta.id)});
  checkpoints().put(checkpoint_key(meta.id),
                    encode_checkpoint(meta, 0, initial_state));
}

void GroupStore::remove_group(GroupId id) {
  groups_.erase(id);
  // Same WAL ordering rule as install_checkpoint, mirrored: the durable
  // identity (the checkpoint) must be gone BEFORE its log storage is
  // reclaimed.  Destroying the log first would let a crash in between
  // resurrect the group at its checkpoint base with every flushed update
  // above base_seq permanently lost.
  checkpoints().erase(checkpoint_key(id));
  checkpoints().flush();
  env_->remove_log(id);
}

bool GroupStore::has_group(GroupId id) const { return groups_.contains(id); }

void GroupStore::append_update(GroupId id, const UpdateRecord& update) {
  auto it = groups_.find(id);
  assert(it != groups_.end() && "append to unknown group");
  it->second.log->append(encode_update_record(update));
}

void GroupStore::install_checkpoint(GroupId id, SeqNo base_seq,
                                    const std::vector<StateEntry>& snapshot) {
  auto it = groups_.find(id);
  assert(it != groups_.end());
  checkpoints().put(checkpoint_key(id),
                    encode_checkpoint(it->second.meta, base_seq, snapshot));
  // WAL checkpoint rule: the covering checkpoint must be durable BEFORE the
  // covered log prefix is destroyed.  drop_prefix reclaims durable storage
  // at once on a real backend, so a crash between a merely-staged checkpoint
  // and the drop would leave the old checkpoint plus a gapped log.  (The
  // fork+SIGKILL property test catches exactly this if the order regresses.)
  checkpoints().flush();
  // Drop log records now covered by the checkpoint.
  LogBackend& log = *it->second.log;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    auto rec = decode_update_record(log.record(i));
    if (!rec.is_ok() || rec.value().seq > base_seq) break;
    ++covered;
  }
  log.drop_prefix(covered);
}

std::size_t GroupStore::flush() {
  checkpoints().flush();
  std::size_t committed = 0;
  for (auto& [id, g] : groups_) committed += g.log->flush();
  return committed;
}

void GroupStore::crash() {
  checkpoints().crash();
  for (auto& [id, g] : groups_) g.log->crash();
  // Groups created but never flushed vanish entirely.
  std::vector<GroupId> gone;
  for (const auto& [id, g] : groups_) {
    if (!checkpoints().get_durable(checkpoint_key(id)).has_value()) {
      gone.push_back(id);
    }
  }
  for (GroupId id : gone) {
    groups_.erase(id);
    env_->remove_log(id);
  }
}

std::vector<RecoveredGroup> GroupStore::recover() const {
  std::vector<RecoveredGroup> out;
  for (const std::string& key : checkpoints().durable_keys()) {
    const auto blob = checkpoints().get_durable(key);
    if (!blob) continue;
    CheckpointImage image;
    if (!decode_checkpoint_blob(*blob, &image)) continue;
    RecoveredGroup rg;
    rg.meta = image.meta;
    rg.base_seq = image.base_seq;
    rg.snapshot = std::move(image.snapshot);

    auto git = groups_.find(rg.meta.id);
    if (git != groups_.end()) {
      const LogBackend& log = *git->second.log;
      for (std::size_t i = 0; i < log.durable_size(); ++i) {
        auto rec = decode_update_record(log.record(i));
        if (rec.is_ok() && rec.value().seq > rg.base_seq) {
          rg.updates.push_back(std::move(rec).value());
        }
      }
    }
    std::sort(rg.updates.begin(), rg.updates.end(),
              [](const UpdateRecord& a, const UpdateRecord& b) {
                return a.seq < b.seq;
              });
    out.push_back(std::move(rg));
  }
  std::sort(out.begin(), out.end(),
            [](const RecoveredGroup& a, const RecoveredGroup& b) {
              return a.meta.id < b.meta.id;
            });
  return out;
}

std::uint64_t GroupStore::pending_bytes() const {
  std::uint64_t b = 0;
  for (const auto& [id, g] : groups_) b += g.log->pending_bytes();
  return b;
}

std::size_t GroupStore::pending_records() const {
  std::size_t n = 0;
  for (const auto& [id, g] : groups_) n += g.log->unflushed();
  return n;
}

std::uint64_t GroupStore::log_records(GroupId id) const {
  auto it = groups_.find(id);
  return it != groups_.end() ? it->second.log->size() : 0;
}

std::uint64_t GroupStore::log_bytes() const {
  std::uint64_t b = 0;
  for (const auto& [id, g] : groups_) b += g.log->bytes_appended();
  return b;
}

}  // namespace corona
