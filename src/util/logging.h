// Minimal leveled logging.
//
// Protocol code logs through this facade; tests run silent by default and a
// bench/example can raise the level to watch a timeline.  Thread-safe: the
// threaded runtime logs from many node threads.
#pragma once

#include <sstream>
#include <string>

#include "util/sync.h"

namespace corona {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  // Writes one line if `level` is enabled.  `tag` identifies the subsystem.
  void write(LogLevel level, const std::string& tag, const std::string& text);

 private:
  Logger() = default;
  // The logger is shared by every node thread under ThreadRuntime, so line
  // assembly must be serialized; it never feeds back into protocol state.
  mutable Mutex mu_;
  LogLevel level_ CORONA_GUARDED_BY(mu_) = LogLevel::kWarn;
};

namespace logdetail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace logdetail

#define CORONA_LOG(lvl_, tag_, ...)                                     \
  do {                                                                  \
    if (static_cast<int>(lvl_) >=                                       \
        static_cast<int>(::corona::Logger::instance().level())) {       \
      ::corona::Logger::instance().write(                               \
          lvl_, tag_, ::corona::logdetail::concat(__VA_ARGS__));        \
    }                                                                   \
  } while (0)

#define LOG_TRACE(tag, ...) CORONA_LOG(::corona::LogLevel::kTrace, tag, __VA_ARGS__)
#define LOG_DEBUG(tag, ...) CORONA_LOG(::corona::LogLevel::kDebug, tag, __VA_ARGS__)
#define LOG_INFO(tag, ...) CORONA_LOG(::corona::LogLevel::kInfo, tag, __VA_ARGS__)
#define LOG_WARN(tag, ...) CORONA_LOG(::corona::LogLevel::kWarn, tag, __VA_ARGS__)
#define LOG_ERROR(tag, ...) CORONA_LOG(::corona::LogLevel::kError, tag, __VA_ARGS__)

}  // namespace corona
