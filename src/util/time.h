// Simulated-time vocabulary.
//
// All protocol code measures time in integral microseconds of *virtual* time
// supplied by its Runtime.  Under the discrete-event engine this is the event
// clock; under the threaded engine it is a steady clock.  Using a plain
// integral type (rather than std::chrono) keeps serialization and event-queue
// keys trivial, but the unit is fixed here in one place.
#pragma once

#include <cstdint>

namespace corona {

// Microseconds of virtual time since the start of the run.
using TimePoint = std::int64_t;

// Microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * kMillisecond;

constexpr double to_ms(Duration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double to_sec(Duration d) { return static_cast<double>(d) / kSecond; }

}  // namespace corona
