#include "util/invariant.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace corona {

std::string InvariantReport::to_string() const {
  std::string out;
  for (const std::string& v : violations_) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

void InvariantReport::merge(const InvariantReport& other) {
  violations_.insert(violations_.end(), other.violations_.begin(),
                     other.violations_.end());
}

namespace {

void default_handler(const char* file, int line, const char* expr,
                     const char* message) {
  std::fprintf(stderr, "CORONA_INVARIANT violated at %s:%d\n  check: %s\n  %s\n",
               file, line, expr, message);
  std::fflush(stderr);
  std::abort();
}

// Atomic so a test swapping the handler is visible to node threads under
// ThreadRuntime without a data race.  A single word needs no corona::Mutex
// (util/sync.h); anything richer than one pointer would.
std::atomic<InvariantHandler> g_handler{&default_handler};

}  // namespace

InvariantHandler set_invariant_handler(InvariantHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &default_handler);
}

void invariant_failed(const char* file, int line, const char* expr,
                      const char* message) {
  g_handler.load()(file, line, expr, message);
}

}  // namespace corona
