// Byte-buffer primitives shared across the code base.
//
// Corona treats every shared object as an opaque byte stream (paper §3.1:
// "the state of a shared object is type-independent"), so a small, explicit
// vocabulary for byte buffers keeps that opacity visible in signatures.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace corona {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

// Builds a byte buffer from character data; used heavily by examples and
// tests that layer textual payloads on the opaque-object model.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// Interprets a byte buffer as character data. Only meaningful for payloads
// the *application* knows are text; the service itself never does this.
inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

// Payload of `n` bytes with a deterministic fill, for workload generators.
inline Bytes filler_bytes(std::size_t n, std::uint8_t seed = 0x5a) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i * 131u);
  }
  return b;
}

}  // namespace corona
