#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace corona {

void LatencyStats::add(double sample) { samples_.push_back(sample); }

double LatencyStats::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double LatencyStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double LatencyStats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double LatencyStats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double LatencyStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return sorted[std::min(idx, sorted.size() - 1)];
}

double LatencyStats::stddev_pct_of_mean() const {
  const double m = mean();
  if (m == 0.0) return 0.0;
  return stddev() / m * 100.0;
}

double ThroughputMeter::kbytes_per_sec() const {
  const Duration e = elapsed();
  if (e <= 0) return 0.0;
  return static_cast<double>(bytes_) / 1000.0 / to_sec(e);
}

double ThroughputMeter::messages_per_sec() const {
  const Duration e = elapsed();
  if (e <= 0) return 0.0;
  return static_cast<double>(messages_) / to_sec(e);
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << "| " << s << std::string(widths[c] - s.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace corona
