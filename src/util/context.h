// Execution-context annotations for the interprocedural call-graph lints
// (tools/reach/corona_reach.py, ANALYSIS.md §12; tools/heat/corona_heat.py,
// ANALYSIS.md §13).
//
// Four facts about a function that no type signature carries:
//
//   CORONA_BLOCKING      — may park the calling thread in the kernel for an
//                          unbounded time (fsync, blocking connect, sleep,
//                          file reads...).  These are the *leaves* the
//                          reachability rules trace back from.
//   CORONA_NONBLOCKING   — looks like it does syscalls that block, but is
//                          certified not to (non-blocking fds, eventfd
//                          writes).  The analysis does not descend into a
//                          function so marked; the annotation is a reviewed
//                          claim, like CORONA_NO_THREAD_SAFETY_ANALYSIS.
//   CORONA_LOOP_CONTEXT  — runs on a latency-critical event-loop thread
//                          (the SocketRuntime epoll loop and everything it
//                          dispatches: Node::on_start/on_message/on_timer).
//                          A blocking leaf reachable from here stalls every
//                          connection on the node.
//   CORONA_HOT_PATH      — on the per-message fast path: the sequencer is
//                          the paper's per-message bottleneck (dispatch →
//                          sequence → apply → log → encode → fan-out on one
//                          thread), so every allocation, heavy-type copy,
//                          or string formatting reachable from here is paid
//                          once per multicast.  corona-heat traces these
//                          roots and gates its findings behind the reviewed
//                          copy inventory (tools/heat/heat_baseline.json).
//
// Under clang the macros expand to __attribute__((annotate(...))) so the
// libclang frontend reads them straight off the AST; everywhere else they
// compile away and the textual frontend recognizes the macro tokens in
// source.  Either way they cost nothing at runtime.
//
// Placement: prefix position on the declaration, like virtual/static —
//   CORONA_BLOCKING void sync();
//   CORONA_LOOP_CONTEXT void on_timer(std::uint64_t tag) override;
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(annotate)
#define CORONA_CTX(x) __attribute__((annotate(x)))
#endif
#endif
#ifndef CORONA_CTX
#define CORONA_CTX(x)  // not clang: annotations compile away
#endif

#define CORONA_BLOCKING CORONA_CTX("corona::blocking")
#define CORONA_NONBLOCKING CORONA_CTX("corona::nonblocking")
#define CORONA_LOOP_CONTEXT CORONA_CTX("corona::loop_context")
#define CORONA_HOT_PATH CORONA_CTX("corona::hot_path")
