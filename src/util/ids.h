// Strong identifier types.
//
// Every actor and artifact in the system gets its own integral id wrapper so
// that a group id can never be passed where a node id is expected (Core
// Guidelines P.1/P.4: express ideas directly in code; prefer static type
// safety).  Ids are ordered and hashable so they can key standard containers.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace corona {

namespace detail {

// CRTP base for a totally-ordered, hashable integral id.
template <typename Tag>
struct StrongId {
  std::uint64_t value = 0;

  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value(v) {}

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value == b.value;
  }
  friend constexpr auto operator<=>(StrongId a, StrongId b) {
    return a.value <=> b.value;
  }
};

}  // namespace detail

// A node is any protocol endpoint reachable through a Runtime: a client, a
// server, or the coordinator.  Node ids are assigned by the harness that
// builds the topology.
struct NodeId : detail::StrongId<NodeId> {
  using StrongId::StrongId;
};

// Communication group (paper §3.1: "a group represents the basic unit of
// communication in Corona").
struct GroupId : detail::StrongId<GroupId> {
  using StrongId::StrongId;
};

// Identifier of a shared object within a group's shared state.
struct ObjectId : detail::StrongId<ObjectId> {
  using StrongId::StrongId;
};

// Per-group, monotonically increasing sequence number assigned by the
// sequencer; defines the total order of multicasts in the group.
using SeqNo = std::uint64_t;

// Monotonic id for a client's outgoing requests, used to match replies and
// to recover unflushed updates from the original sender (paper §6).
using RequestId = std::uint64_t;

inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  return os << "node:" << id.value;
}
inline std::ostream& operator<<(std::ostream& os, GroupId id) {
  return os << "group:" << id.value;
}
inline std::ostream& operator<<(std::ostream& os, ObjectId id) {
  return os << "obj:" << id.value;
}

}  // namespace corona

namespace std {
template <>
struct hash<corona::NodeId> {
  size_t operator()(corona::NodeId id) const noexcept {
    return hash<uint64_t>{}(id.value);
  }
};
template <>
struct hash<corona::GroupId> {
  size_t operator()(corona::GroupId id) const noexcept {
    return hash<uint64_t>{}(id.value);
  }
};
template <>
struct hash<corona::ObjectId> {
  size_t operator()(corona::ObjectId id) const noexcept {
    return hash<uint64_t>{}(id.value);
  }
};
}  // namespace std
