// Measurement accumulators used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace corona {

// Collects scalar samples (latencies, sizes) and reports summary statistics.
// The paper reports means over 600 messages with a standard deviation of
// 2-19% of the mean; this accumulator reproduces exactly those summaries.
class LatencyStats {
 public:
  void add(double sample);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  // p in [0,100]; nearest-rank on a sorted copy.
  double percentile(double p) const;
  // Standard deviation as a percentage of the mean (the paper's metric).
  double stddev_pct_of_mean() const;

  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

// Aggregated-throughput meter: bytes delivered over a virtual-time window.
class ThroughputMeter {
 public:
  void start(TimePoint now) { start_ = now; bytes_ = 0; messages_ = 0; }
  void on_delivery(std::size_t bytes) { bytes_ += bytes; ++messages_; }
  void stop(TimePoint now) { stop_ = now; }

  std::uint64_t total_bytes() const { return bytes_; }
  std::uint64_t total_messages() const { return messages_; }
  Duration elapsed() const { return stop_ - start_; }
  // Kilobytes (1000 B) per second of virtual time.
  double kbytes_per_sec() const;
  double messages_per_sec() const;

 private:
  TimePoint start_ = 0;
  TimePoint stop_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t messages_ = 0;
};

// Fixed-width text table, used by every bench binary to print the paper's
// tables and figure series in a uniform format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  static std::string fmt(double v, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace corona
