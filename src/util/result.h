// Result<T>: value-or-error return type for the library surface.
//
// Corona is a service whose clients are expected to be unreliable and whose
// operations routinely fail for non-exceptional reasons (group missing,
// permission denied by the session manager, lock already held...).  Those are
// ordinary outcomes, so they travel in the return value; exceptions are
// reserved for programmer errors (contract violations).
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace corona {

enum class Errc {
  kOk = 0,
  kNotFound,          // group / object / member does not exist
  kAlreadyExists,     // create of an existing group
  kNotMember,         // operation requires group membership
  kPermissionDenied,  // rejected by the workspace session manager
  kLockHeld,          // lock owned by another member
  kInvalidArgument,
  kDisconnected,  // endpoint not connected / peer unreachable
  kCorrupt,       // storage record failed validation
  kTimeout,
  kUnavailable,  // e.g. no coordinator elected yet
};

inline const char* errc_name(Errc e) {
  switch (e) {
    case Errc::kOk: return "ok";
    case Errc::kNotFound: return "not-found";
    case Errc::kAlreadyExists: return "already-exists";
    case Errc::kNotMember: return "not-member";
    case Errc::kPermissionDenied: return "permission-denied";
    case Errc::kLockHeld: return "lock-held";
    case Errc::kInvalidArgument: return "invalid-argument";
    case Errc::kDisconnected: return "disconnected";
    case Errc::kCorrupt: return "corrupt";
    case Errc::kTimeout: return "timeout";
    case Errc::kUnavailable: return "unavailable";
  }
  return "unknown";
}

// Error code plus human-readable context.  [[nodiscard]] at the type level:
// every function returning a Status is fallible, and silently dropping the
// outcome is exactly the bug the reach lint's unchecked-fallible rule hunts
// (ANALYSIS.md §12).  Deliberate drops write `(void)`.
struct [[nodiscard]] Status {
  Errc code = Errc::kOk;
  std::string detail;

  static Status ok() { return {}; }
  static Status error(Errc c, std::string d = {}) { return {c, std::move(d)}; }

  bool is_ok() const { return code == Errc::kOk; }
  explicit operator bool() const { return is_ok(); }

  std::string to_string() const {
    std::string s = errc_name(code);
    if (!detail.empty()) {
      s += ": ";
      s += detail;
    }
    return s;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

// Value-or-Status.  `value()` asserts success: callers check first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "ok Status carries no value; use Result(T)");
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    assert(is_ok());
    return *value_;
  }
  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const& {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::ok();
};

}  // namespace corona
