// corona::Mutex / corona::MutexLock / corona::CondVar — the only sanctioned
// locking primitives in src/ (corona-lint's `raw-mutex` rule enforces this;
// docs/ANALYSIS.md §9).
//
// The wrappers carry Clang Thread Safety Analysis attributes, so a clang
// build with -Wthread-safety (CMake option CORONA_THREAD_SAFETY, preset
// `thread-safety`) proves lock discipline at compile time: every field
// marked CORONA_GUARDED_BY is only touched with its mutex held, every
// method marked CORONA_REQUIRES is only called under the right lock, and
// RAII scopes can't leak or double-acquire.  Under GCC (or older clang) the
// attribute macros expand to nothing and the wrappers are zero-cost shims
// over the std primitives, so the portable build is unchanged.
//
// The static half of the same contract is tools/lint/lock_order.py: it
// parses these wrappers' acquisition scopes and CORONA_REQUIRES annotations
// out of the sources, builds the lock-acquisition-order graph, and fails on
// cycles (potential deadlocks) without needing any compiler at all.
//
// lint-file: thread-ok — this header IS the wrapper over the raw std
// primitives; everything else goes through it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/time.h"

// ---------------------------------------------------------------------------
// Attribute macros (no-ops outside clang).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CORONA_TSA(x) __attribute__((x))
#endif
#endif
#ifndef CORONA_TSA
#define CORONA_TSA(x)  // not clang (or too old): attributes compile away
#endif

// A type that is a lockable capability ("mutex" names it in diagnostics).
#define CORONA_CAPABILITY(name) CORONA_TSA(capability(name))
// An RAII type that acquires in its constructor and releases in its
// destructor (clang tracks what it holds across manual unlock()/lock()).
#define CORONA_SCOPED_CAPABILITY CORONA_TSA(scoped_lockable)
// Field may only be read/written with the named mutex held.
#define CORONA_GUARDED_BY(x) CORONA_TSA(guarded_by(x))
// Pointer field: the *pointee* is guarded by the named mutex.
#define CORONA_PT_GUARDED_BY(x) CORONA_TSA(pt_guarded_by(x))
// Function requires the named capabilities held on entry (and exit).
#define CORONA_REQUIRES(...) CORONA_TSA(requires_capability(__VA_ARGS__))
// Function must NOT be called with the named capabilities held.
#define CORONA_EXCLUDES(...) CORONA_TSA(locks_excluded(__VA_ARGS__))
// Function acquires / releases the named capabilities (RAII internals).
#define CORONA_ACQUIRE(...) CORONA_TSA(acquire_capability(__VA_ARGS__))
#define CORONA_RELEASE(...) CORONA_TSA(release_capability(__VA_ARGS__))
#define CORONA_TRY_ACQUIRE(...) CORONA_TSA(try_acquire_capability(__VA_ARGS__))
// Documented lock-order edges, checked by clang (lock_order.py reads the
// REQUIRES/ scope structure instead, so the two passes cross-check).
#define CORONA_ACQUIRED_BEFORE(...) CORONA_TSA(acquired_before(__VA_ARGS__))
#define CORONA_ACQUIRED_AFTER(...) CORONA_TSA(acquired_after(__VA_ARGS__))
// Escape hatch for code the analysis cannot see through.  Every use in
// src/ needs a justification comment (ANALYSIS.md §9 lists them).
#define CORONA_NO_THREAD_SAFETY_ANALYSIS CORONA_TSA(no_thread_safety_analysis)

namespace corona {

class CondVar;

// Plain exclusive mutex.  Prefer the RAII MutexLock; lock()/unlock() exist
// for the rare hand-over-hand pattern and stay annotation-checked.
class CORONA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CORONA_ACQUIRE() { mu_.lock(); }
  void unlock() CORONA_RELEASE() { mu_.unlock(); }
  bool try_lock() CORONA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// Recursive mutex — only for the documented client-callback re-entrance
// (core/client.h); new code should structure around plain Mutex.
class CORONA_CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() CORONA_ACQUIRE() { mu_.lock(); }
  void unlock() CORONA_RELEASE() { mu_.unlock(); }

 private:
  friend class RecursiveMutexLock;
  std::recursive_mutex mu_;
};

// RAII scope over a Mutex.  Supports the manual unlock()/lock() window the
// worker loops need (run a handler outside the lock, retake it after) and
// is the handle CondVar::wait operates on — both stay visible to the
// analysis through the ACQUIRE/RELEASE annotations.
class CORONA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CORONA_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexLock() CORONA_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Temporarily exit / re-enter the critical section mid-scope.
  void unlock() CORONA_RELEASE() { lk_.unlock(); }
  void lock() CORONA_ACQUIRE() { lk_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

// RAII scope over a RecursiveMutex.
class CORONA_SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex& mu) CORONA_ACQUIRE(mu)
      : lk_(mu.mu_) {}
  ~RecursiveMutexLock() CORONA_RELEASE() {}

  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  std::unique_lock<std::recursive_mutex> lk_;
};

// Condition variable bound to MutexLock scopes.  wait() atomically releases
// and reacquires the scope's mutex; from the caller's (and the analysis')
// point of view the lock is held before and after, which is exactly the
// invariant guarded fields need across a wait loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& scope) { cv_.wait(scope.lk_); }

  // Duration is corona's integral-microseconds vocabulary (util/time.h).
  // Returns false on timeout, true when notified.
  bool wait_for(MutexLock& scope, Duration timeout_us) {
    return cv_.wait_for(scope.lk_, std::chrono::microseconds(timeout_us)) ==
           std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace corona
