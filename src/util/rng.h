// Deterministic pseudo-random number generation.
//
// Everything in the simulator and in the workload generators must be
// reproducible run-to-run, so all randomness flows through an explicitly
// seeded generator — never std::random_device or global state.
#pragma once

#include <cmath>
#include <cstdint>

namespace corona {

// splitmix64: tiny, fast, and statistically fine for workload shaping.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  // Exponentially distributed with the given mean (for Poisson arrivals).
  double next_exponential(double mean);

 private:
  std::uint64_t state_;
};

inline double Rng::next_exponential(double mean) {
  // Inverse-CDF; clamp away from 0 to avoid -inf.
  double u = next_double();
  if (u < 1e-12) u = 1e-12;
  return -mean * std::log(u);
}

}  // namespace corona
