// CORONA_INVARIANT — the runtime half of the analysis net (see
// docs/ANALYSIS.md).
//
// The stateful cores (LockTable, SharedState, Group, ReplicationManager,
// the coordinator's groups, the sim EventQueue) each expose a
// `check_invariants()` walk that returns an InvariantReport describing
// every structural violation it finds.  The walks are always compiled —
// tests corrupt a structure and assert the walk notices — but the *inline
// checkpoints* (CORONA_INVARIANT / CORONA_CHECK_INVARIANTS sprinkled at
// mutation sites) are active only in Debug and sanitizer builds and
// compile to nothing in Release, so the hot path pays nothing.
//
// A failed checkpoint calls the installed handler; the default prints the
// diagnosis and aborts.  Tests install a recording handler to observe
// failures without dying.
#pragma once

#include <string>
#include <vector>

namespace corona {

// Accumulates violation descriptions from a check_invariants() walk.
class InvariantReport {
 public:
  // Records one violated invariant; `what` should name the structure and
  // the property, e.g. "LockTable: holder node:3 also queued for obj:7".
  void fail(std::string what) { violations_.push_back(std::move(what)); }

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  // All violations joined with "; " (empty string when ok).
  std::string to_string() const;

  // Folds another report in (used by composite walks, e.g. Group folding
  // in its LockTable's and SharedState's reports).
  void merge(const InvariantReport& other);

 private:
  std::vector<std::string> violations_;
};

// Called by a failed CORONA_INVARIANT / CORONA_CHECK_INVARIANTS.  The
// default handler prints file:line, the expression and the message to
// stderr and aborts.  Tests may install their own; the previous handler is
// returned so it can be restored.
using InvariantHandler = void (*)(const char* file, int line,
                                  const char* expr, const char* message);
InvariantHandler set_invariant_handler(InvariantHandler handler);
void invariant_failed(const char* file, int line, const char* expr,
                      const char* message);

}  // namespace corona

// Active in Debug builds (no NDEBUG) and whenever the build forces them on
// (sanitizer presets define CORONA_FORCE_INVARIANTS; see CMakeLists.txt).
#if defined(CORONA_FORCE_INVARIANTS) || !defined(NDEBUG)
#define CORONA_INVARIANTS_ENABLED 1
#else
#define CORONA_INVARIANTS_ENABLED 0
#endif

#if CORONA_INVARIANTS_ENABLED
// Checks a single condition at a checkpoint.
#define CORONA_INVARIANT(cond, message)                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::corona::invariant_failed(__FILE__, __LINE__, #cond, (message));    \
    }                                                                      \
  } while (0)
// Runs a component's full check_invariants() walk at a checkpoint.
#define CORONA_CHECK_INVARIANTS(component)                                 \
  do {                                                                     \
    const ::corona::InvariantReport corona_rep_ =                          \
        (component).check_invariants();                                    \
    if (!corona_rep_.ok()) {                                               \
      ::corona::invariant_failed(__FILE__, __LINE__, #component,           \
                                 corona_rep_.to_string().c_str());         \
    }                                                                      \
  } while (0)
#else
// Compiled out, but still odr-uses the operands so builds stay warning-free
// in both modes.
#define CORONA_INVARIANT(cond, message) \
  do {                                  \
    (void)sizeof(!(cond));              \
    (void)sizeof(message);              \
  } while (0)
#define CORONA_CHECK_INVARIANTS(component) \
  do {                                     \
    (void)sizeof(&(component));            \
  } while (0)
#endif
