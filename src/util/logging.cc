#include "util/logging.h"

#include <iostream>

namespace corona {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  MutexLock lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  MutexLock lock(mu_);
  return level_;
}

namespace {
const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, const std::string& tag,
                   const std::string& text) {
  MutexLock lock(mu_);
  if (static_cast<int>(level) < static_cast<int>(level_)) return;
  std::cerr << "[" << level_name(level) << "] " << tag << ": " << text << "\n";
}

}  // namespace corona
