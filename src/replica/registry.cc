#include "replica/registry.h"

#include <algorithm>

namespace corona {

void ServerRegistry::set_servers(std::vector<NodeId> ordered,
                                 std::uint64_t epoch) {
  // Stale lists (older epochs) are ignored; the coordinator's view wins.
  if (epoch < epoch_) return;
  servers_ = std::move(ordered);
  epoch_ = epoch;
}

bool ServerRegistry::contains(NodeId id) const {
  return std::find(servers_.begin(), servers_.end(), id) != servers_.end();
}

void ServerRegistry::add(NodeId id) {
  if (!contains(id)) servers_.push_back(id);
}

void ServerRegistry::remove(NodeId id) {
  servers_.erase(std::remove(servers_.begin(), servers_.end(), id),
                 servers_.end());
}

std::optional<std::size_t> ServerRegistry::position_of(NodeId id) const {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (servers_[i] == id) return i;
  }
  return std::nullopt;
}

std::optional<NodeId> ServerRegistry::first_excluding(NodeId excluding) const {
  for (NodeId s : servers_) {
    if (!(s == excluding)) return s;
  }
  return std::nullopt;
}

}  // namespace corona
