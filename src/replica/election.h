// Coordinator election (paper §4.2).
//
// "When the coordinator crashes, the first server in the list becomes the new
// coordinator. ... The first server sends a message to all the other servers
// and it assumes the role of coordinator when it receives acknowledgments
// from half+1 of the remaining servers.  If the first server wrongfully
// assumes that the coordinator is down, (some of) the other servers will
// notice this and will respond with a nack. ... An increasing timeout
// interval is allowed for each of the servers at the top of the list: the
// first detects that the coordinator is down after time t, the second
// detects that both the coordinator and the first are down after time 2t,
// and so on."  A system of k+1 servers thus tolerates k simultaneous crashes.
//
// ElectionTally counts votes for one claim; claim_delay() computes the
// staged timeout for a server's list position.
#pragma once

#include <cstdint>
#include <set>

#include "util/ids.h"
#include "util/time.h"

namespace corona {

// Staged suspicion deadline for the server at `position` (0-based among the
// non-coordinator servers): position 0 claims after `base`, position 1
// after 2*base, ...
constexpr Duration claim_delay(std::size_t position, Duration base) {
  return static_cast<Duration>(position + 1) * base;
}

class ElectionTally {
 public:
  // `remaining` is the number of servers that survive the crashed
  // coordinator, including the claimant itself.  Winning needs half+1 of
  // them; the claimant's own (implicit) vote counts.
  void start(std::uint64_t epoch, std::size_t remaining);

  // Records a vote for the current epoch.  Votes for other epochs and
  // duplicate voters are ignored.
  void vote(std::uint64_t epoch, NodeId voter, bool accept);

  std::uint64_t epoch() const { return epoch_; }
  bool in_progress() const { return active_; }
  std::size_t acks() const { return acks_.size(); }
  std::size_t nacks() const { return nacks_.size(); }

  // half+1 of remaining, counting the claimant.
  bool won() const;
  // A nack proves the old coordinator is alive somewhere: abandon.
  bool lost() const { return active_ && !nacks_.empty(); }
  void finish() { active_ = false; }

 private:
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;
  std::set<NodeId> acks_;
  std::set<NodeId> nacks_;
  bool active_ = false;
};

}  // namespace corona
