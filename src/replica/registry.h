// Server registry (paper §4.2).
//
// "All the servers, including the coordinator, maintain a list (sorted in
// the order the servers have been brought up) of the other servers ...  This
// information is loaded at startup from the configuration files and it is
// updated as a result of the changes (server joins or leaves) sent from the
// coordinator to every server."
//
// Position in this list drives the election: "When the coordinator crashes,
// the first server in the list becomes the new coordinator", with staged
// timeouts down the list.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ids.h"

namespace corona {

class ServerRegistry {
 public:
  ServerRegistry() = default;
  // `ordered` is the startup-order configuration (coordinator first).
  explicit ServerRegistry(std::vector<NodeId> ordered)
      : servers_(std::move(ordered)) {}

  void set_servers(std::vector<NodeId> ordered, std::uint64_t epoch);
  const std::vector<NodeId>& servers() const { return servers_; }
  std::uint64_t epoch() const { return epoch_; }

  bool contains(NodeId id) const;
  // Appends a newly started server (coordinator-side operation).
  void add(NodeId id);
  void remove(NodeId id);

  // Zero-based position in startup order; nullopt if absent.
  std::optional<std::size_t> position_of(NodeId id) const;
  // First server in the list other than `excluding` (the crashed
  // coordinator) — the election favourite.
  std::optional<NodeId> first_excluding(NodeId excluding) const;
  std::size_t size() const { return servers_.size(); }

  void bump_epoch() { ++epoch_; }

 private:
  std::vector<NodeId> servers_;
  std::uint64_t epoch_ = 0;
};

}  // namespace corona
