// The replicated Corona service (paper §4).
//
// Star topology: one server acts as COORDINATOR (the global sequencer and
// membership authority), the others are LEAF servers that directly support
// clients.  "When a client sends a broadcast message to its server, the
// server forwards the message to the coordinator, which distributes it to
// the whole group through the corresponding servers.  Only the servers who
// have members in that particular group will receive the broadcast message."
//
// Every ReplicaServer embeds both roles; the coordinator role is activated
// by configuration (the first server in the startup list) or by winning an
// election after the coordinator crashes (§4.2).  The same node class
// therefore survives promotion without being replaced.
//
// Leaf duties:   serve the full client protocol; keep state copies for the
//                groups its clients belong to (joins are served locally —
//                "the join protocol does not involve the existing members");
//                forward multicasts/group-ops to the coordinator; fan
//                sequenced multicasts out to local members; watch the
//                coordinator with a staged failure detector and run the
//                first-in-list election.
// Coordinator:   sequence multicasts (total + causal order, FIFO per
//                sender); own global membership, locks and persistence;
//                heartbeat the leaves; maintain the server registry; keep
//                >= 2 state copies per group alive via backup assignment;
//                take over state from the freshest holders after an
//                election; drive partition reconciliation.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/group.h"
#include "core/locks.h"
#include "core/state_transfer.h"
#include "replica/election.h"
#include "replica/failure_detector.h"
#include "replica/partition.h"
#include "replica/recovery.h"
#include "replica/registry.h"
#include "replica/replication_manager.h"
#include "runtime/runtime.h"
#include "serial/message.h"
#include "storage/group_store.h"
#include "util/context.h"
#include "util/ids.h"
#include "util/invariant.h"

namespace corona {

struct ReplicaConfig {
  Duration heartbeat_interval = 200 * kMillisecond;
  // Base failure-detection timeout t; the server at position p in the list
  // claims the coordinatorship after (p+1)*t of coordinator silence (§4.2).
  Duration fd_timeout = 1000 * kMillisecond;
  // How long a claimant waits for votes before giving up.
  Duration election_window = 500 * kMillisecond;
  // How long a new coordinator collects server hellos before pulling state.
  Duration takeover_window = 400 * kMillisecond;
  std::size_t min_copies = 2;   // hot-standby requirement (§4.1)
  Duration flush_interval = 100 * kMillisecond;
  // CPU model for state maintenance (same role as ServerConfig's).
  Duration state_cpu_per_msg = 20;
  double state_cpu_per_byte = 0.02;

  // Batched fan-out.  When batch_max_msgs > 1, the coordinator coalesces
  // outbound kSeqMulticast frames per leaf and leaves coalesce kDeliver
  // frames per client: an outbox accumulates until batch_max_msgs sequencing
  // decisions are queued or batch_max_delay after the first, then every
  // destination gets one coalesced frame.  Sequencing, state application and
  // timestamping stay immediate and per-message, so ordering, gap detection,
  // retransmission and state transfer are semantically untouched.
  // batch_max_msgs <= 1 keeps today's one-frame-per-message path.
  std::size_t batch_max_msgs = 1;
  Duration batch_max_delay = 0;
};

struct ReplicaStats {
  std::uint64_t forwarded = 0;          // leaf -> coordinator multicasts
  std::uint64_t sequenced = 0;          // coordinator sequencing decisions
  std::uint64_t fanout_deliveries = 0;  // leaf -> client deliveries
  std::uint64_t state_pulls = 0;        // kStateQuery issued
  std::uint64_t backups_assigned = 0;
  std::uint64_t elections_started = 0;
  std::uint64_t elections_won = 0;
  std::uint64_t takeover_pulls = 0;
  std::uint64_t reconciled_groups = 0;
  // Batching: coalesced (>1 msg) frames sent downstream.
  std::uint64_t seq_batch_frames = 0;     // coordinator -> leaf
  std::uint64_t fanout_batch_frames = 0;  // leaf -> client
};

class ReplicaServer : public Node {
 public:
  enum class Role { kLeaf, kCoordinator };

  // `startup_servers` is the configuration-file server list, coordinator
  // first; it must contain this node's id.  `store` is the durable store
  // used while this node is coordinator (nullptr = private throwaway).
  ReplicaServer(ReplicaConfig cfg, std::vector<NodeId> startup_servers,
                GroupStore* store = nullptr);
  ~ReplicaServer() override;

  void on_start() override;
  void on_message(NodeId from, const Message& m) override;
  void on_timer(std::uint64_t tag) override;

  // -- introspection ----------------------------------------------------------
  Role role() const { return role_; }
  bool is_coordinator() const { return role_ == Role::kCoordinator; }
  NodeId coordinator() const { return coordinator_; }
  std::uint64_t term() const { return term_; }
  const ServerRegistry& registry() const { return registry_; }
  const ReplicaStats& stats() const { return stats_; }
  // Leaf-side copy of a group's shared state (nullptr if not held).
  const SharedState* local_state(GroupId g) const;
  bool holds_copy(GroupId g) const { return local_.contains(g); }
  // Coordinator-side authoritative state (nullptr unless coordinator and
  // the group exists).
  const SharedState* coord_state(GroupId g) const;
  std::vector<NodeId> coord_holders(GroupId g) const;
  std::size_t coord_group_count() const { return cgroups_.size(); }

  // -- partition healing -------------------------------------------------------
  // Called on the surviving/primary coordinator once connectivity returns
  // (the paper leaves policy choice to the application, so the trigger is
  // explicit).  Pulls digests+branches from `other_coordinator`, merges
  // every group under `policy`, pushes the merged state to all holders and
  // local members on both sides, and finally re-announces itself with a
  // higher term so the other coordinator demotes to a leaf.
  void begin_reconcile(NodeId other_coordinator, PartitionPolicy policy);

 private:
  // ====================== shared =====================================
  struct LocalMember {
    MemberRole role = MemberRole::kPrincipal;
    bool notify = false;
  };
  struct LocalGroup {
    GroupMeta meta;
    SharedState state;
    std::map<NodeId, LocalMember> local_members;
    std::map<NodeId, MemberRole> global_members;
    bool awaiting_fill = false;  // retransmit in flight for a seq gap
  };

  void become_coordinator(std::uint64_t term);
  void adopt_coordinator(NodeId coord, std::uint64_t term);
  std::vector<GroupHead> local_group_heads() const;

  // ====================== leaf side ===================================
  void leaf_handle_client(NodeId from, const Message& m);
  void leaf_handle_join(NodeId from, const Message& m);
  void leaf_serve_join(LocalGroup& lg, NodeId client, const Message& m);
  void leaf_handle_leave(NodeId from, const Message& m);
  CORONA_HOT_PATH void leaf_handle_bcast(NodeId from, const Message& m);
  CORONA_HOT_PATH void leaf_handle_seq_multicast(const Message& m);
  CORONA_HOT_PATH void leaf_apply_and_fanout(LocalGroup& lg,
                                             const UpdateRecord& rec,
                                             bool sender_inclusive,
                                             NodeId origin);
  // Sends every queued kDeliver run, one coalesced frame per client.
  CORONA_HOT_PATH void leaf_flush_outbox();
  void leaf_handle_state_reply(NodeId from, const Message& m);
  void leaf_install_state(GroupId g, const Message& m);
  void leaf_handle_notice(const Message& m);
  void leaf_handle_group_op_result(const Message& m);
  void leaf_handle_group_deleted(const Message& m);
  void leaf_handle_log_reduced(const Message& m);
  void leaf_request_state(GroupId g);
  void leaf_push_snapshot_to_members(LocalGroup& lg);
  void forward_group_op(NodeId client, const Message& m);

  // election
  void leaf_check_coordinator();
  void start_claim();
  void handle_claim(NodeId from, const Message& m);
  void handle_vote(NodeId from, const Message& m);
  void handle_announce(NodeId from, const Message& m);

  // ====================== coordinator side (coordinator.cc) ===========
  struct CoordMemberInfo {
    NodeId leaf;  // the server this client connects through
    MemberRole role = MemberRole::kPrincipal;
    bool notify = false;
  };
  struct CoordGroup {
    GroupMeta meta;
    SharedState state;
    SeqNo next_seq = 1;
    std::map<NodeId, CoordMemberInfo> members;  // client -> info
    LockTable locks;
    std::set<std::pair<std::uint64_t, RequestId>> seen;

    // Sequencer invariants: the next sequence number to hand out is exactly
    // head_seq+1 (the sequencer never skips or reuses a number), the
    // authoritative history has no gaps, and every lock holder/waiter is a
    // current member; plus the nested SharedState/LockTable invariants.
    InvariantReport check_invariants() const;
  };

  CORONA_HOT_PATH void coord_handle_fwd_multicast(NodeId from,
                                                  const Message& m);
  void coord_sequence(CoordGroup& cg, UpdateRecord rec, bool sender_inclusive,
                      NodeId origin_leaf);
  void coord_handle_group_op(NodeId from, const Message& m);
  void coord_op_create(NodeId leaf, const Message& m);
  void coord_op_delete(NodeId leaf, const Message& m);
  void coord_op_join(NodeId leaf, const Message& m);
  void coord_op_leave(NodeId leaf, const Message& m);
  void coord_op_lock(NodeId leaf, const Message& m);
  void coord_op_unlock(NodeId leaf, const Message& m);
  void coord_op_reduce(NodeId leaf, const Message& m);
  // Sends every queued kSeqMulticast run, one coalesced frame per leaf.
  void coord_flush_outbox();
  void coord_handle_state_query(NodeId from, const Message& m);
  void coord_handle_resend(NodeId from, const Message& m);
  void coord_handle_hello(NodeId from, const Message& m);
  void coord_handle_heartbeat_ack(NodeId from, const Message& m);
  void coord_heartbeat_tick();
  void coord_drop_server(NodeId leaf);
  void coord_send_notice(CoordGroup& cg, NodeId subject, MemberRole role,
                         bool joined);
  void coord_maybe_assign_backup(GroupId g);
  void coord_send_result(NodeId leaf, const Message& original, Status s);
  void coord_route_lock_grant(GroupId g, ObjectId obj, NodeId client);
  CoordGroup* coord_find(GroupId g);
  void coord_persist_create(const CoordGroup& cg);
  void coord_flush_tick();
  // takeover
  void coord_begin_takeover();
  void coord_finish_takeover();
  void coord_handle_takeover_state(NodeId from, const Message& m);
  // reconciliation
  void coord_handle_push(NodeId from, const Message& m);
  void coord_handle_digest_request(NodeId from, const Message& m);
  void coord_handle_digest_reply(NodeId from, const Message& m);
  void coord_finish_reconcile();
  void coord_push_group_state(GroupId g);
  void coord_install_merged(GroupId g, SeqNo fork,
                            std::vector<UpdateRecord> tail);

  // ====================== data =======================================
  ReplicaConfig cfg_;
  // role_/coordinator_/term_ are written only by the owning node's thread
  // but read cross-thread through the introspection getters (the threaded
  // tests poll them mid-election), hence atomic.  This class deliberately
  // holds NO lock: everything else is owned by the node's runtime thread
  // (single-threaded by construction), so the annotated corona::Mutex
  // discipline (util/sync.h, ANALYSIS.md §9) has nothing to guard here —
  // any future cross-thread state must use corona::Mutex + GUARDED_BY, not
  // more atomics.
  std::atomic<Role> role_ = Role::kLeaf;
  std::atomic<NodeId> coordinator_;
  std::atomic<std::uint64_t> term_ = 0;  // announce/election term
  std::uint64_t voted_term_ = 0;
  ServerRegistry registry_;
  ReplicaStats stats_;

  // Batching outboxes (cfg_.batch_max_msgs > 1 only): per-destination runs
  // of already-sequenced frames awaiting one coalesced send each.
  std::map<NodeId, std::vector<Message>> coord_outbox_;
  std::size_t coord_outbox_msgs_ = 0;  // sequencing decisions queued
  TimerHandle coord_batch_timer_ = 0;
  std::map<NodeId, std::vector<Message>> leaf_outbox_;
  std::size_t leaf_outbox_msgs_ = 0;  // applied records queued
  TimerHandle leaf_batch_timer_ = 0;

  // leaf
  std::map<GroupId, LocalGroup> local_;
  std::map<GroupId, std::vector<std::pair<NodeId, Message>>> pending_joins_;
  std::set<GroupId> awaiting_state_;
  FailureDetector coord_fd_;
  ElectionTally tally_;

  // coordinator
  std::map<GroupId, CoordGroup> cgroups_;
  ReplicationManager repl_;
  FailureDetector leaf_fd_;
  GroupStore* store_;
  std::unique_ptr<GroupStore> owned_store_;
  std::map<GroupId, std::vector<Message>> pending_fwd_;  // takeover queue
  bool collecting_hellos_ = false;
  std::map<NodeId, std::vector<GroupHead>> hello_reports_;

  // reconciliation (initiator side)
  struct ReconcileSession {
    NodeId other;
    PartitionPolicy policy = PartitionPolicy::kSelectPrimary;
    bool active = false;
    std::uint64_t processed = 0;
  };
  ReconcileSession reconcile_;

  static constexpr std::uint64_t kHeartbeatTimer = 1;
  static constexpr std::uint64_t kCoordCheckTimer = 2;
  static constexpr std::uint64_t kElectionTimer = 3;
  static constexpr std::uint64_t kTakeoverTimer = 4;
  static constexpr std::uint64_t kFlushTimer = 5;
  static constexpr std::uint64_t kCoordBatchTimer = 6;
  static constexpr std::uint64_t kLeafBatchTimer = 7;
};

}  // namespace corona
