#include "replica/partition.h"

#include <algorithm>

namespace corona {

const char* partition_policy_name(PartitionPolicy p) {
  switch (p) {
    case PartitionPolicy::kRollback: return "rollback";
    case PartitionPolicy::kSelectPrimary: return "select-primary";
    case PartitionPolicy::kEvolveSeparately: return "evolve-separately";
  }
  return "?";
}

std::uint64_t record_digest(const UpdateRecord& rec) {
  // FNV-1a over the record's identity and payload.  Not cryptographic —
  // it distinguishes divergent histories, which is all reconciliation needs.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(rec.seq);
  mix(static_cast<std::uint64_t>(rec.kind));
  mix(rec.object.value);
  mix(rec.sender.value);
  mix(rec.request_id);
  for (std::uint8_t b : rec.data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

BranchDigest make_branch_digest(const SharedState& state) {
  BranchDigest d;
  d.base_seq = state.base_seq();
  for (const UpdateRecord& rec : state.history()) {
    d.entries.emplace_back(rec.seq, record_digest(rec));
  }
  return d;
}

std::optional<SeqNo> find_fork_point(const BranchDigest& a,
                                     const BranchDigest& b) {
  // Records below the higher of the two checkpoint bases are unverifiable
  // (one side reduced them away); the comparison starts there.  If the other
  // side's retained history has a hole across that point — its newest record
  // is still older than `start` while its base is lower — the histories
  // never overlap and no fork point can be certified.
  const SeqNo start = std::max(a.base_seq, b.base_seq);
  const BranchDigest& lower = a.base_seq <= b.base_seq ? a : b;
  if (lower.base_seq < start && !lower.entries.empty() &&
      lower.entries.back().first < start) {
    return std::nullopt;
  }
  auto after_start = [start](const BranchDigest& d) {
    std::vector<std::pair<SeqNo, std::uint64_t>> out;
    for (const auto& e : d.entries) {
      if (e.first > start) out.push_back(e);
    }
    return out;
  };
  const auto ea = after_start(a);
  const auto eb = after_start(b);
  SeqNo agreed = start;
  std::size_t i = 0;
  while (i < ea.size() && i < eb.size()) {
    if (ea[i].first != eb[i].first || ea[i].second != eb[i].second) break;
    agreed = ea[i].first;
    ++i;
  }
  return agreed;
}

Branch extract_branch(const SharedState& state, SeqNo fork) {
  Branch b;
  b.updates = state.since(fork);
  return b;
}

ReconcileOutcome reconcile_branches(GroupId group, SeqNo fork, Branch branch_a,
                                    Branch branch_b, PartitionPolicy policy,
                                    bool primary_wins) {
  ReconcileOutcome out;
  out.policy = policy;
  out.fork = fork;
  switch (policy) {
    case PartitionPolicy::kRollback:
      // Both branches discarded; merged history is empty past the fork.
      break;
    case PartitionPolicy::kSelectPrimary:
      out.merged_tail =
          primary_wins ? std::move(branch_a.updates) : std::move(branch_b.updates);
      break;
    case PartitionPolicy::kEvolveSeparately:
      out.merged_tail = std::move(branch_a.updates);
      out.split_group = GroupId(group.value + kSplitGroupIdOffset);
      out.split_tail = std::move(branch_b.updates);
      break;
  }
  return out;
}

SharedState state_at(const SharedState& state, SeqNo fork) {
  SharedState rebuilt;
  rebuilt.load(state.base_seq(), state.snapshot_at_base());
  for (const UpdateRecord& rec : state.history()) {
    if (rec.seq <= fork) rebuilt.apply(rec);
  }
  return rebuilt;
}

}  // namespace corona
