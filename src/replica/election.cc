#include "replica/election.h"

namespace corona {

void ElectionTally::start(std::uint64_t epoch, std::size_t remaining) {
  epoch_ = epoch;
  remaining_ = remaining;
  acks_.clear();
  nacks_.clear();
  active_ = true;
}

void ElectionTally::vote(std::uint64_t epoch, NodeId voter, bool accept) {
  if (!active_ || epoch != epoch_) return;
  if (accept) {
    if (!nacks_.contains(voter)) acks_.insert(voter);
  } else {
    acks_.erase(voter);
    nacks_.insert(voter);
  }
}

bool ElectionTally::won() const {
  if (!active_ || !nacks_.empty()) return false;
  // Claimant's own vote + acks must exceed half of the remaining servers.
  return acks_.size() + 1 >= remaining_ / 2 + 1;
}

}  // namespace corona
