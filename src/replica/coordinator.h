// Coordinator role of the replicated Corona service (paper §4.1).
//
// The coordinator-side state and handlers are members of ReplicaServer
// (every server can be promoted by the election of §4.2); this header exists
// as the documentation anchor for the coordinator protocol implemented in
// coordinator.cc:
//
//   * global sequencing — "The coordinator acts as a sequencer for messages.
//     A multicast message is assigned a unique sequence number, which
//     increases monotonically and thus imposes a total order on multicast
//     messages within a group."
//   * fan-out restriction — "Only the servers who have members in that
//     particular group will receive the broadcast message."
//   * global membership, locks, persistence and log reduction;
//   * heartbeats + the server registry;
//   * hot-standby placement — at least `min_copies` leaf copies per group,
//     with backup election when membership concentrates on one leaf;
//   * takeover — after winning an election, pull the freshest state copy of
//     every group from the surviving leaves;
//   * partition reconciliation — digest exchange, fork-point discovery, and
//     the three application policies of §4.2.
#pragma once

#include "replica/replica_server.h"
