// Coordinator-side handlers of ReplicaServer.  See coordinator.h for the
// protocol overview and replica_server.cc for the leaf side.
#include <algorithm>
#include <cassert>
#include <cmath>

#include "replica/coordinator.h"
#include "util/logging.h"

namespace corona {

ReplicaServer::CoordGroup* ReplicaServer::coord_find(GroupId g) {
  auto it = cgroups_.find(g);
  return it != cgroups_.end() ? &it->second : nullptr;
}

InvariantReport ReplicaServer::CoordGroup::check_invariants() const {
  InvariantReport rep;
  rep.merge(state.check_invariants());
  rep.merge(locks.check_invariants());
  if (next_seq != state.head_seq() + 1) {
    rep.fail("CoordGroup: next_seq " + std::to_string(next_seq) +
             " != head_seq+1 " + std::to_string(state.head_seq() + 1));
  }
  // The authoritative copy applies every sequenced record, so its retained
  // history is gapless over (base_seq, head_seq] — unlike client copies,
  // which may hold object-filtered tails.
  SeqNo expect = state.base_seq();
  for (const UpdateRecord& r : state.history()) {
    ++expect;
    if (r.seq != expect) {
      rep.fail("CoordGroup: history gap — expected seq " +
               std::to_string(expect) + ", found " + std::to_string(r.seq));
      expect = r.seq;
    }
  }
  for (const auto& [obj, node] : locks.all_holders()) {
    if (!members.contains(node)) {
      rep.fail("CoordGroup: lock holder node:" + std::to_string(node.value) +
               " for obj:" + std::to_string(obj.value) + " is not a member");
    }
  }
  for (const auto& [obj, node] : locks.all_waiters()) {
    if (!members.contains(node)) {
      rep.fail("CoordGroup: lock waiter node:" + std::to_string(node.value) +
               " for obj:" + std::to_string(obj.value) + " is not a member");
    }
  }
  return rep;
}

void ReplicaServer::become_coordinator(std::uint64_t term) {
  const NodeId old_coordinator = coordinator_;
  role_ = Role::kCoordinator;
  coordinator_ = id();
  term_ = std::max<std::uint64_t>(term_, term);
  tally_.finish();
  ++stats_.elections_won;
  LOG_INFO("replica", "server ", id().value, " is coordinator, term ",
           term_.load());

  if (!(old_coordinator == id())) registry_.remove(old_coordinator);
  registry_.set_servers(registry_.servers(), term_);

  // Watch every other server; announce; distribute the updated list.
  for (NodeId s : registry_.servers()) {
    if (s == id()) continue;
    leaf_fd_.watch(s, now());
    send(s, make_coord_announce(id(), term_));
    send(s, make_server_list(term_, registry_.servers()));
  }

  // Seed the authoritative state from this server's own leaf copies, and
  // re-register its local members (self-hello keeps the flow uniform with
  // the other leaves').
  for (const auto& [g, lg] : local_) {
    if (cgroups_.contains(g)) continue;
    CoordGroup cg;
    cg.meta = lg.meta;
    cg.state = lg.state;
    cg.next_seq = lg.state.head_seq() + 1;
    // Seed the resend-dedup set from the retained history so client
    // recovery resends of already-sequenced updates are not applied twice.
    for (const UpdateRecord& u : lg.state.history()) {
      cg.seen.emplace(u.sender.value, u.request_id);
    }
    CORONA_CHECK_INVARIANTS(cg);
    cgroups_.emplace(g, std::move(cg));
    if (!store_->has_group(g)) {
      store_->create_group(local_.at(g).meta, lg.state.snapshot_at_base());
    }
    repl_.add_backup(g, id());
    for (const auto& [client, info] : lg.local_members) {
      Message op;
      op.type = MsgType::kGroupOp;
      op.fwd_type = MsgType::kJoin;
      op.group = g;
      op.sender = client;
      op.origin_server = id();
      op.role = info.role;
      op.notify_membership = info.notify;
      op.sender_inclusive = true;  // silent re-registration
      send(id(), op);
    }
  }

  // Cold-start recovery: persistent groups on this server's durable store
  // come back with their checkpoint + flushed log (§3.1 persistence across
  // service restarts).  Transient groups died with their members and are
  // not resurrected.
  for (RecoveredGroup& rg : store_->recover()) {
    if (cgroups_.contains(rg.meta.id) || !rg.meta.persistent) continue;
    CoordGroup cg;
    cg.meta = rg.meta;
    cg.state.load(rg.base_seq, rg.snapshot);
    SeqNo head = rg.base_seq;
    for (const UpdateRecord& u : rg.updates) {
      cg.state.apply(u);
      cg.seen.emplace(u.sender.value, u.request_id);
      head = u.seq;
    }
    cg.next_seq = head + 1;
    CORONA_CHECK_INVARIANTS(cg);
    LOG_INFO("replica", "coordinator recovered ", rg.meta.id,
             " head=", head);
    cgroups_.emplace(rg.meta.id, std::move(cg));
  }

  collecting_hellos_ = true;
  hello_reports_.clear();
  set_timer(cfg_.takeover_window, kTakeoverTimer);
  set_timer(cfg_.heartbeat_interval, kHeartbeatTimer);
  set_timer(cfg_.flush_interval, kFlushTimer);
}

// ---------------------------------------------------------------------------
// Heartbeats + registry
// ---------------------------------------------------------------------------

void ReplicaServer::coord_heartbeat_tick() {
  for (NodeId s : registry_.servers()) {
    if (s == id()) continue;
    send(s, make_heartbeat(term_));
  }
  for (NodeId dead : leaf_fd_.suspects(now())) {
    LOG_INFO("replica", "coordinator drops dead server ", dead.value);
    coord_drop_server(dead);
  }
}

void ReplicaServer::coord_handle_heartbeat_ack(NodeId from, const Message& m) {
  (void)m;
  leaf_fd_.heard_from(from, now());
}

void ReplicaServer::coord_drop_server(NodeId leaf) {
  leaf_fd_.unwatch(leaf);
  registry_.remove(leaf);
  registry_.bump_epoch();
  for (NodeId s : registry_.servers()) {
    if (s == id()) continue;
    send(s, make_server_list(registry_.epoch(), registry_.servers()));
  }
  // Members connected through the dead leaf are gone (fail-stop clients of
  // a fail-stop server); drop them and notify survivors.
  for (auto& [g, cg] : cgroups_) {
    std::vector<NodeId> lost;
    for (const auto& [client, info] : cg.members) {
      if (info.leaf == leaf) lost.push_back(client);
    }
    for (NodeId client : lost) {
      cg.members.erase(client);
      for (auto& [obj, grantee] : cg.locks.drop_member(client)) {
        coord_route_lock_grant(g, obj, grantee);
      }
      coord_send_notice(cg, client, MemberRole::kPrincipal, /*joined=*/false);
    }
    CORONA_CHECK_INVARIANTS(cg);
  }
  // Restore the hot-standby invariant for groups that lost a copy.
  for (GroupId g : repl_.drop_server(leaf)) {
    coord_maybe_assign_backup(g);
  }
}

void ReplicaServer::coord_handle_hello(NodeId from, const Message& m) {
  if (!is_coordinator()) return;
  if (!registry_.contains(from)) {
    registry_.add(from);
    registry_.bump_epoch();
    for (NodeId s : registry_.servers()) {
      if (s == id()) continue;
      send(s, make_server_list(registry_.epoch(), registry_.servers()));
    }
  }
  leaf_fd_.watch(from, now());
  if (collecting_hellos_) {
    hello_reports_[from] = decode_group_heads(m.u64s);
  }
}

// ---------------------------------------------------------------------------
// Sequencing
// ---------------------------------------------------------------------------

void ReplicaServer::coord_handle_fwd_multicast(NodeId from, const Message& m) {
  if (!is_coordinator()) return;  // stale routing during an election
  CoordGroup* cg = coord_find(m.group);
  if (cg == nullptr) {
    if (collecting_hellos_ || pending_fwd_.contains(m.group)) {
      // Takeover in progress: hold until the group's state is pulled.
      pending_fwd_[m.group].push_back(m);
      return;
    }
    coord_send_result(from, m, Status::error(Errc::kNotFound));
    return;
  }
  if (!cg->members.contains(m.sender)) {
    coord_send_result(from, m, Status::error(Errc::kNotMember));
    return;
  }
  UpdateRecord rec;
  rec.kind = m.kind;
  rec.object = m.object;
  rec.data = m.payload;
  rec.sender = m.sender;
  rec.timestamp = now();  // sequencer timestamping
  rec.request_id = m.request_id;
  coord_sequence(*cg, std::move(rec), m.sender_inclusive, from);
}

void ReplicaServer::coord_sequence(CoordGroup& cg, UpdateRecord rec,
                                   bool sender_inclusive, NodeId origin_leaf) {
  (void)origin_leaf;
  rec.seq = cg.next_seq++;
  cg.seen.emplace(rec.sender.value, rec.request_id);
  ++stats_.sequenced;

  rt().charge_cpu(id(), cfg_.state_cpu_per_msg +
                            static_cast<Duration>(std::llround(
                                cfg_.state_cpu_per_byte *
                                static_cast<double>(rec.data.size()))));
  cg.state.apply(rec);
  store_->append_update(cg.meta.id, rec);

  Message out;
  out.type = MsgType::kSeqMulticast;
  out.group = cg.meta.id;
  out.seq = rec.seq;
  out.kind = rec.kind;
  out.object = rec.object;
  out.payload = rec.data;
  out.sender = rec.sender;
  out.timestamp = rec.timestamp;
  out.request_id = rec.request_id;
  out.sender_inclusive = sender_inclusive;
  if (cfg_.batch_max_msgs > 1) {
    // Batched fan-out: the sequencing decision above is final and immediate
    // (seq, state, log, timestamp all per-message); only the outbound frames
    // coalesce.  Each leaf's run flushes as one frame at the threshold or
    // after batch_max_delay.
    for (NodeId holder : repl_.holders(cg.meta.id)) {
      coord_outbox_[holder].push_back(out);
    }
    ++coord_outbox_msgs_;
    if (coord_outbox_msgs_ >= cfg_.batch_max_msgs) {
      if (coord_batch_timer_ != 0) {
        cancel_timer(coord_batch_timer_);
        coord_batch_timer_ = 0;
      }
      coord_flush_outbox();
    } else if (coord_batch_timer_ == 0) {
      coord_batch_timer_ = set_timer(cfg_.batch_max_delay, kCoordBatchTimer);
    }
  } else {
    for (NodeId holder : repl_.holders(cg.meta.id)) {
      send(holder, out);
    }
  }
  CORONA_CHECK_INVARIANTS(cg);
}

void ReplicaServer::coord_flush_outbox() {
  coord_outbox_msgs_ = 0;
  if (coord_outbox_.empty()) return;
  auto outbox = std::move(coord_outbox_);
  coord_outbox_.clear();
  for (auto& [leaf, msgs] : outbox) {
    if (msgs.size() > 1) ++stats_.seq_batch_frames;
    send_batch(leaf, msgs);
  }
}

void ReplicaServer::coord_handle_resend(NodeId from, const Message& m) {
  CoordGroup* cg = coord_find(m.group);
  if (cg == nullptr) {
    if (collecting_hellos_ || pending_fwd_.contains(m.group)) {
      pending_fwd_[m.group].push_back(m);
    }
    return;
  }
  for (const UpdateRecord& orig : m.updates) {
    if (cg->seen.contains({orig.sender.value, orig.request_id})) continue;
    if (!cg->members.contains(orig.sender)) continue;
    UpdateRecord rec = orig;
    rec.timestamp = now();
    coord_sequence(*cg, std::move(rec), /*sender_inclusive=*/true, from);
  }
}

// ---------------------------------------------------------------------------
// Group operations
// ---------------------------------------------------------------------------

void ReplicaServer::coord_send_result(NodeId leaf, const Message& original,
                                      Status s) {
  Message r;
  r.type = MsgType::kGroupOpResult;
  r.fwd_type = original.fwd_type != MsgType::kInvalid ? original.fwd_type
                                                      : original.type;
  r.group = original.group;
  r.sender = original.sender;
  r.request_id = original.request_id;
  r.status = s.code;
  r.text = std::move(s.detail);
  send(leaf, r);
}

// Coordinator op dispatch (fwd_type of forwarded client operations): every
// MsgType must be handled below or waived.
// lint-dispatch: MsgType
// dispatch-ignore: kGetMembership kBcastState kBcastUpdate -- leaf-served;
//   membership reads and multicasts never arrive as forwarded group ops
// dispatch-ignore: kReply kJoinReply kMembershipInfo kDeliver -- emitted only
// dispatch-ignore: kServerHello kHeartbeat kHeartbeatAck -- membership layer
// dispatch-ignore: kServerList kElectionClaim kElectionVote -- election layer
// dispatch-ignore: kCoordAnnounce kResendRequest -- membership layer
void ReplicaServer::coord_handle_group_op(NodeId from, const Message& m) {
  if (!is_coordinator()) return;
  // During a takeover, operations on groups whose state is still being
  // pulled (member re-registrations above all) are held back with the
  // forwarded multicasts and replayed once the pull lands.
  if (m.fwd_type != MsgType::kCreateGroup && !cgroups_.contains(m.group) &&
      (collecting_hellos_ || pending_fwd_.contains(m.group))) {
    pending_fwd_[m.group].push_back(m);
    return;
  }
  switch (m.fwd_type) {
    case MsgType::kCreateGroup: coord_op_create(from, m); break;
    case MsgType::kDeleteGroup: coord_op_delete(from, m); break;
    case MsgType::kJoin: coord_op_join(from, m); break;
    case MsgType::kLeave: coord_op_leave(from, m); break;
    case MsgType::kLockRequest: coord_op_lock(from, m); break;
    case MsgType::kLockRelease: coord_op_unlock(from, m); break;
    case MsgType::kReduceLog: coord_op_reduce(from, m); break;
    default:
      coord_send_result(from, m, Status::error(Errc::kInvalidArgument));
      break;
  }
}

void ReplicaServer::coord_persist_create(const CoordGroup& cg) {
  if (!store_->has_group(cg.meta.id)) {
    store_->create_group(cg.meta, cg.state.snapshot_at_base());
  }
}

void ReplicaServer::coord_op_create(NodeId leaf, const Message& m) {
  if (cgroups_.contains(m.group)) {
    coord_send_result(leaf, m, Status::error(Errc::kAlreadyExists));
    return;
  }
  CoordGroup cg;
  cg.meta = GroupMeta{m.group, m.text, m.persistent};
  cg.state.load(0, m.state);
  coord_persist_create(cg);
  cgroups_.emplace(m.group, std::move(cg));
  coord_send_result(leaf, m, Status::ok());
}

void ReplicaServer::coord_op_delete(NodeId leaf, const Message& m) {
  CoordGroup* cg = coord_find(m.group);
  if (cg == nullptr) {
    coord_send_result(leaf, m, Status::error(Errc::kNotFound));
    return;
  }
  Message note;
  note.type = MsgType::kGroupDeleted;
  note.group = m.group;
  for (NodeId holder : repl_.holders(m.group)) send(holder, note);
  cgroups_.erase(m.group);
  repl_.drop_group(m.group);
  store_->remove_group(m.group);
  coord_send_result(leaf, m, Status::ok());
}

void ReplicaServer::coord_op_join(NodeId leaf, const Message& m) {
  CoordGroup* cg = coord_find(m.group);
  if (cg == nullptr) {
    coord_send_result(leaf, m, Status::error(Errc::kNotFound));
    return;
  }
  const bool silent = m.sender_inclusive;  // takeover re-registration
  cg->members[m.sender] = CoordMemberInfo{leaf, m.role, m.notify_membership};
  repl_.add_supporting_server(m.group, leaf);
  coord_maybe_assign_backup(m.group);
  if (!silent) {
    coord_send_notice(*cg, m.sender, m.role, /*joined=*/true);
    coord_send_result(leaf, m, Status::ok());
  }
}

void ReplicaServer::coord_op_leave(NodeId leaf, const Message& m) {
  CoordGroup* cg = coord_find(m.group);
  if (cg == nullptr) {
    coord_send_result(leaf, m, Status::error(Errc::kNotFound));
    return;
  }
  cg->members.erase(m.sender);
  for (auto& [obj, grantee] : cg->locks.drop_member(m.sender)) {
    coord_route_lock_grant(m.group, obj, grantee);
  }
  coord_send_notice(*cg, m.sender, m.role, /*joined=*/false);
  CORONA_CHECK_INVARIANTS(*cg);

  // Does the leaf still support members of this group?
  bool still_supports = false;
  for (const auto& [client, info] : cg->members) {
    if (info.leaf == leaf) {
      still_supports = true;
      break;
    }
  }
  if (!still_supports) {
    repl_.remove_supporting_server(m.group, leaf);
    if (repl_.copy_count(m.group) >= cfg_.min_copies) {
      // Enough copies without this leaf: release it.
      Message rel;
      rel.type = MsgType::kBackupAssign;
      rel.group = m.group;
      rel.accept = false;
      send(leaf, rel);
    } else {
      // Keep it as the hot standby.
      repl_.add_backup(m.group, leaf);
      coord_maybe_assign_backup(m.group);
    }
  }

  // Persistent groups outlive null membership; transient ones die (§3.1).
  if (cg->members.empty() && !cg->meta.persistent) {
    Message note;
    note.type = MsgType::kGroupDeleted;
    note.group = m.group;
    for (NodeId holder : repl_.holders(m.group)) send(holder, note);
    cgroups_.erase(m.group);
    repl_.drop_group(m.group);
    store_->remove_group(m.group);
  }
}

void ReplicaServer::coord_send_notice(CoordGroup& cg, NodeId subject,
                                      MemberRole role, bool joined) {
  Message note;
  note.type = MsgType::kMembershipNotice;
  note.group = cg.meta.id;
  note.sender = subject;
  note.role = role;
  note.accept = joined;
  for (NodeId holder : repl_.holders(cg.meta.id)) send(holder, note);
}

void ReplicaServer::coord_maybe_assign_backup(GroupId g) {
  if (!cgroups_.contains(g)) return;
  // Candidates in startup order, excluding the coordinator itself (its copy
  // is implicit).
  std::vector<NodeId> candidates;
  for (NodeId s : registry_.servers()) {
    if (!(s == id())) candidates.push_back(s);
  }
  if (auto backup = repl_.pick_backup(g, candidates)) {
    repl_.add_backup(g, *backup);
    ++stats_.backups_assigned;
    Message assign;
    assign.type = MsgType::kBackupAssign;
    assign.group = g;
    assign.accept = true;
    send(*backup, assign);
  }
  // Release surplus backups once enough member-driven copies exist.
  for (NodeId surplus : repl_.releasable_backups(g)) {
    repl_.remove_backup(g, surplus);
    Message rel;
    rel.type = MsgType::kBackupAssign;
    rel.group = g;
    rel.accept = false;
    send(surplus, rel);
  }
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

void ReplicaServer::coord_route_lock_grant(GroupId g, ObjectId obj,
                                           NodeId client) {
  CoordGroup* cg = coord_find(g);
  if (cg == nullptr) return;
  auto it = cg->members.find(client);
  if (it == cg->members.end()) return;
  Message r;
  r.type = MsgType::kGroupOpResult;
  r.fwd_type = MsgType::kLockGrant;
  r.group = g;
  r.object = obj;
  r.sender = client;
  send(it->second.leaf, r);
}

void ReplicaServer::coord_op_lock(NodeId leaf, const Message& m) {
  CoordGroup* cg = coord_find(m.group);
  if (cg == nullptr || !cg->members.contains(m.sender)) {
    coord_send_result(leaf, m, Status::error(Errc::kNotMember));
    return;
  }
  const auto outcome = cg->locks.acquire(m.object, m.sender);
  if (outcome == LockTable::AcquireOutcome::kGranted) {
    Message r;
    r.type = MsgType::kGroupOpResult;
    r.fwd_type = MsgType::kLockGrant;
    r.group = m.group;
    r.object = m.object;
    r.sender = m.sender;
    r.request_id = m.request_id;
    send(leaf, r);
  } else {
    coord_send_result(leaf, m, Status::error(Errc::kLockHeld, "queued"));
  }
}

void ReplicaServer::coord_op_unlock(NodeId leaf, const Message& m) {
  CoordGroup* cg = coord_find(m.group);
  if (cg == nullptr) {
    coord_send_result(leaf, m, Status::error(Errc::kNotFound));
    return;
  }
  auto result = cg->locks.release(m.object, m.sender);
  if (!result) {
    coord_send_result(leaf, m, result.status());
    return;
  }
  coord_send_result(leaf, m, Status::ok());
  if (auto next = result.value()) {
    coord_route_lock_grant(m.group, m.object, *next);
  }
}

// ---------------------------------------------------------------------------
// Log reduction
// ---------------------------------------------------------------------------

void ReplicaServer::coord_op_reduce(NodeId leaf, const Message& m) {
  CoordGroup* cg = coord_find(m.group);
  if (cg == nullptr) {
    coord_send_result(leaf, m, Status::error(Errc::kNotFound));
    return;
  }
  const SeqNo upto = m.seq == 0 ? cg->state.head_seq() : m.seq;
  cg->state.reduce_to(upto);
  store_->install_checkpoint(m.group, cg->state.base_seq(),
                             cg->state.snapshot_at_base());
  Message done;
  done.type = MsgType::kLogReduced;
  done.group = m.group;
  done.seq = cg->state.base_seq();
  for (NodeId holder : repl_.holders(m.group)) send(holder, done);

  Message r;
  r.type = MsgType::kGroupOpResult;
  r.fwd_type = MsgType::kReduceLog;
  r.group = m.group;
  r.seq = cg->state.base_seq();
  r.sender = m.sender;
  r.request_id = m.request_id;
  send(leaf, r);
}

// ---------------------------------------------------------------------------
// State queries (leaf installs, gap fills)
// ---------------------------------------------------------------------------

void ReplicaServer::coord_handle_state_query(NodeId from, const Message& m) {
  CoordGroup* cg = coord_find(m.group);
  Message reply;
  reply.type = MsgType::kStateReply;
  reply.group = m.group;
  reply.request_id = m.request_id;
  if (cg == nullptr) {
    reply.status = Errc::kNotFound;
    send(from, reply);
    return;
  }
  if (m.type == MsgType::kRetransmitReq) {
    const SharedState& st = cg->state;
    if (m.seq <= st.base_seq() && st.base_seq() > 0) {
      reply.seq = st.base_seq();
      reply.state = st.snapshot_at_base();
      reply.updates = st.history();
      reply.text = cg->meta.name;
      reply.persistent = cg->meta.persistent;
    } else {
      reply.seq = st.base_seq();
      for (const UpdateRecord& u : st.since(m.seq - 1)) {
        if (m.seq2 != 0 && u.seq > m.seq2) break;
        reply.updates.push_back(u);
      }
    }
    send(from, reply);
    return;
  }
  // Full-fidelity install for a leaf that will support the group: base
  // snapshot plus retained history, so the leaf can serve last-n joins.
  reply.seq = cg->state.base_seq();
  reply.state = cg->state.snapshot_at_base();
  reply.updates = cg->state.history();
  reply.text = cg->meta.name;
  reply.persistent = cg->meta.persistent;
  // The asking leaf becomes a copy holder right away so no sequenced
  // multicast is skipped between this reply and the member's join op.
  repl_.add_backup(m.group, from);
  send(from, reply);
}

// ---------------------------------------------------------------------------
// Takeover after an election (paper §4.2)
// ---------------------------------------------------------------------------

void ReplicaServer::coord_begin_takeover() {
  collecting_hellos_ = false;
  std::map<GroupId, SeqNo> local_heads;
  for (const auto& [g, cg] : cgroups_) {
    local_heads.emplace(g, cg.state.head_seq());
  }
  const auto plan = plan_takeover(hello_reports_, local_heads);
  // Operations queued for groups no surviving server knows about are
  // rejected now rather than held forever.
  std::vector<GroupId> unknown;
  for (const auto& [g, queued] : pending_fwd_) {
    if (!cgroups_.contains(g) && !plan.contains(g)) unknown.push_back(g);
  }
  for (GroupId g : unknown) {
    for (const Message& m : pending_fwd_[g]) {
      coord_send_result(m.origin_server, m, Status::error(Errc::kNotFound));
    }
    pending_fwd_.erase(g);
  }
  if (plan.empty()) {
    coord_finish_takeover();
    return;
  }
  for (const auto& [g, directive] : plan) {
    pending_fwd_.try_emplace(g);  // queue multicasts until the pull lands
    Message q;
    q.type = MsgType::kStateQuery;
    q.group = g;
    q.origin_server = id();
    ++stats_.takeover_pulls;
    send(directive.source, q);
  }
}

void ReplicaServer::coord_handle_takeover_state(NodeId from, const Message& m) {
  (void)from;
  if (m.status != Errc::kOk) {
    pending_fwd_.erase(m.group);
    return;
  }
  CoordGroup cg;
  cg.meta = GroupMeta{m.group, m.text, m.persistent};
  cg.state.load(m.seq, m.state);
  for (const UpdateRecord& u : m.updates) {
    cg.state.apply(u);
    cg.seen.emplace(u.sender.value, u.request_id);
  }
  cg.next_seq = cg.state.head_seq() + 1;
  CORONA_CHECK_INVARIANTS(cg);
  coord_persist_create(cg);
  cgroups_.insert_or_assign(m.group, std::move(cg));
  coord_finish_takeover();
}

void ReplicaServer::coord_finish_takeover() {
  // Replay operations queued for groups whose state has now been installed,
  // in arrival order: re-registrations first restore the membership, then
  // the held multicasts sequence normally.
  std::vector<GroupId> ready;
  for (const auto& [g, queued] : pending_fwd_) {
    if (cgroups_.contains(g)) ready.push_back(g);
  }
  for (GroupId g : ready) {
    auto queued = std::move(pending_fwd_[g]);
    pending_fwd_.erase(g);
    for (const Message& m : queued) {
      switch (m.type) {
        case MsgType::kFwdMulticast:
          coord_handle_fwd_multicast(m.origin_server, m);
          break;
        case MsgType::kGroupOp:
          coord_handle_group_op(m.origin_server, m);
          break;
        case MsgType::kResendReply:
          coord_handle_resend(m.origin_server, m);
          break;
        default:
          break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Flushing
// ---------------------------------------------------------------------------

void ReplicaServer::coord_flush_tick() {
  const std::uint64_t bytes = store_->pending_bytes();
  // Commit-group size is already accounted via pending_bytes above.
  (void)store_->flush();
  if (bytes > 0) rt().disk_write(id(), bytes);
}

// ---------------------------------------------------------------------------
// Partition reconciliation (paper §4.2)
// ---------------------------------------------------------------------------

void ReplicaServer::begin_reconcile(NodeId other_coordinator,
                                    PartitionPolicy policy) {
  assert(is_coordinator() && "reconciliation starts at a coordinator");
  reconcile_ = ReconcileSession{other_coordinator, policy, true, 0};
  Message req;
  req.type = MsgType::kDigestRequest;
  req.origin_server = id();
  send(other_coordinator, req);
}

void ReplicaServer::coord_handle_digest_request(NodeId from, const Message& m) {
  (void)m;
  if (!is_coordinator()) return;
  // Ship, per group: the digest of the retained history plus the branch
  // content itself (base snapshot + records), then a sentinel.
  for (const auto& [g, cg] : cgroups_) {
    Message reply;
    reply.type = MsgType::kDigestReply;
    reply.group = g;
    reply.seq = cg.state.base_seq();
    reply.text = cg.meta.name;
    reply.persistent = cg.meta.persistent;
    const BranchDigest digest = make_branch_digest(cg.state);
    for (const auto& [seq, hash] : digest.entries) {
      reply.u64s.push_back(seq);
      reply.u64s.push_back(hash);
    }
    reply.state = cg.state.snapshot_at_base();
    reply.updates = cg.state.history();
    send(from, reply);
  }
  Message sentinel;
  sentinel.type = MsgType::kDigestReply;
  sentinel.group = GroupId(0);
  sentinel.epoch = term_;  // lets the initiator out-term this coordinator
  send(from, sentinel);
}

void ReplicaServer::coord_handle_digest_reply(NodeId from, const Message& m) {
  if (!reconcile_.active || !(from == reconcile_.other)) return;
  if (m.group == GroupId(0)) {
    term_ = std::max<std::uint64_t>(term_, m.epoch);  // out-term their epoch
    coord_finish_reconcile();
    return;
  }

  CoordGroup* mine = coord_find(m.group);
  if (mine == nullptr) {
    // The group only exists on the other side (created during the
    // partition): adopt it wholesale, no conflict.
    CoordGroup cg;
    cg.meta = GroupMeta{m.group, m.text, m.persistent};
    cg.state.load(m.seq, m.state);
    for (const UpdateRecord& u : m.updates) {
      cg.state.apply(u);
      cg.seen.emplace(u.sender.value, u.request_id);
    }
    cg.next_seq = cg.state.head_seq() + 1;
    CORONA_CHECK_INVARIANTS(cg);
    coord_persist_create(cg);
    cgroups_.emplace(m.group, std::move(cg));
    ++stats_.reconciled_groups;
    coord_push_group_state(m.group);
    return;
  }

  // Fork-point discovery from the two digests.
  BranchDigest theirs;
  theirs.base_seq = m.seq;
  for (std::size_t i = 0; i + 1 < m.u64s.size(); i += 2) {
    theirs.entries.emplace_back(m.u64s[i], m.u64s[i + 1]);
  }
  const BranchDigest ours = make_branch_digest(mine->state);
  const auto fork = find_fork_point(ours, theirs);
  // If no fork point is certifiable (reduction trimmed one side beyond the
  // other), fall back to keeping the primary branch untouched.
  if (!fork) {
    ++stats_.reconciled_groups;
    coord_push_group_state(m.group);
    return;
  }

  Branch branch_a = extract_branch(mine->state, *fork);
  Branch branch_b;
  for (const UpdateRecord& u : m.updates) {
    if (u.seq > *fork) branch_b.updates.push_back(u);
  }
  const bool diverged = !branch_a.updates.empty() || !branch_b.updates.empty();
  if (!diverged) {
    // Identical histories; nothing to merge.
    ++stats_.reconciled_groups;
    return;
  }

  ReconcileOutcome outcome =
      reconcile_branches(m.group, *fork, std::move(branch_a),
                         std::move(branch_b), reconcile_.policy,
                         /*primary_wins=*/true);
  coord_install_merged(m.group, *fork, std::move(outcome.merged_tail));
  if (outcome.split_group) {
    // The secondary branch evolves as a new group seeded with the state at
    // the fork plus its own tail (§4.2 "evolving as two different groups").
    CoordGroup split;
    split.meta = GroupMeta{*outcome.split_group, mine->meta.name + "/split",
                           mine->meta.persistent};
    SharedState at_fork = state_at(cgroups_.at(m.group).state, *fork);
    split.state.load(*fork, at_fork.snapshot());
    SeqNo seq = *fork;
    for (UpdateRecord u : outcome.split_tail) {
      u.seq = ++seq;
      split.seen.emplace(u.sender.value, u.request_id);
      split.state.apply(u);
    }
    split.next_seq = seq + 1;
    coord_persist_create(split);
    cgroups_.insert_or_assign(*outcome.split_group, std::move(split));
    coord_push_group_state(*outcome.split_group);
  }
  ++stats_.reconciled_groups;
  coord_push_group_state(m.group);
}

void ReplicaServer::coord_install_merged(GroupId g, SeqNo fork,
                                         std::vector<UpdateRecord> tail) {
  CoordGroup& cg = cgroups_.at(g);
  SharedState merged = state_at(cg.state, fork);
  SeqNo seq = fork;
  for (UpdateRecord u : tail) {
    u.seq = ++seq;  // re-sequence the surviving branch after the fork
    cg.seen.emplace(u.sender.value, u.request_id);
    merged.apply(u);
  }
  cg.state = std::move(merged);
  cg.next_seq = seq + 1;
  CORONA_CHECK_INVARIANTS(cg);
  store_->install_checkpoint(g, cg.state.base_seq(),
                             cg.state.snapshot_at_base());
}

void ReplicaServer::coord_push_group_state(GroupId g) {
  CoordGroup& cg = cgroups_.at(g);
  Message push;
  push.type = MsgType::kStateReply;
  push.accept = true;  // authoritative push: receivers reload
  push.group = g;
  push.seq = cg.state.base_seq();
  push.state = cg.state.snapshot_at_base();
  push.updates = cg.state.history();
  push.text = cg.meta.name;
  push.persistent = cg.meta.persistent;
  for (NodeId holder : repl_.holders(g)) {
    if (!(holder == id())) send(holder, push);
  }
  // The other coordinator reloads too and relays to its own holders.
  if (reconcile_.active) send(reconcile_.other, push);
  // This node's own leaf copy.
  if (local_.contains(g)) {
    auto& lg = local_.at(g);
    auto members = std::move(lg.local_members);
    auto global = std::move(lg.global_members);
    leaf_install_state(g, push);
    LocalGroup& fresh = local_.at(g);
    fresh.local_members = std::move(members);
    fresh.global_members = std::move(global);
    leaf_push_snapshot_to_members(fresh);
  }
}

void ReplicaServer::coord_handle_push(NodeId from, const Message& m) {
  // Authoritative post-reconciliation state from the surviving coordinator:
  // replace our copy, relay to our side's holders, and refresh local members.
  CoordGroup cg;
  cg.meta = GroupMeta{m.group, m.text, m.persistent};
  cg.state.load(m.seq, m.state);
  for (const UpdateRecord& u : m.updates) {
    cg.state.apply(u);
    cg.seen.emplace(u.sender.value, u.request_id);
  }
  cg.next_seq = cg.state.head_seq() + 1;
  auto old = cgroups_.find(m.group);
  if (old != cgroups_.end()) cg.members = std::move(old->second.members);
  CORONA_CHECK_INVARIANTS(cg);
  coord_persist_create(cg);
  store_->install_checkpoint(m.group, cg.state.base_seq(),
                             cg.state.snapshot_at_base());
  cgroups_.insert_or_assign(m.group, std::move(cg));

  for (NodeId holder : repl_.holders(m.group)) {
    if (!(holder == id()) && !(holder == from)) send(holder, m);
  }
  if (local_.contains(m.group)) {
    auto& lg = local_.at(m.group);
    auto members = std::move(lg.local_members);
    auto global = std::move(lg.global_members);
    leaf_install_state(m.group, m);
    LocalGroup& fresh = local_.at(m.group);
    fresh.local_members = std::move(members);
    fresh.global_members = std::move(global);
    leaf_push_snapshot_to_members(fresh);
  }
}

void ReplicaServer::coord_finish_reconcile() {
  reconcile_.active = false;
  term_ = std::max<std::uint64_t>(term_, voted_term_) + 1;
  registry_.set_servers(registry_.servers(), term_);
  // Absorb the other side: a higher-term announce demotes its coordinator,
  // which relays to its leaves; hellos and re-registrations rebuild the
  // global membership here.
  collecting_hellos_ = true;
  hello_reports_.clear();
  set_timer(cfg_.takeover_window, kTakeoverTimer);
  send(reconcile_.other, make_coord_announce(id(), term_));
  for (NodeId s : registry_.servers()) {
    if (s == id()) continue;
    send(s, make_coord_announce(id(), term_));
  }
}

}  // namespace corona
