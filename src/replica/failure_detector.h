// Heartbeat-based failure detection (paper §4.2).
//
// "To detect failures, we use heartbeat messages between the coordinator and
// the other servers and timeouts as upper bounds for communication delays."
//
// Passive component: the owner feeds in heard_from() on every message from a
// watched peer and polls suspects() from its heartbeat timer.  Fail-stop
// model — a suspect is treated as crashed.
#pragma once

#include <map>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace corona {

class FailureDetector {
 public:
  explicit FailureDetector(Duration timeout) : timeout_(timeout) {}

  Duration timeout() const { return timeout_; }
  void set_timeout(Duration t) { timeout_ = t; }

  // Starts watching `peer`; the clock starts at `now`.
  void watch(NodeId peer, TimePoint now);
  void unwatch(NodeId peer);
  bool is_watching(NodeId peer) const { return last_heard_.contains(peer); }

  void heard_from(NodeId peer, TimePoint now);

  // Peers silent for longer than the timeout, in id order.
  std::vector<NodeId> suspects(TimePoint now) const;
  bool is_suspect(NodeId peer, TimePoint now) const;
  // Silence duration; 0 if not watched.
  Duration silence(NodeId peer, TimePoint now) const;

 private:
  Duration timeout_;
  // Ordered so suspects() reports in NodeId order without a sort pass.
  std::map<NodeId, TimePoint> last_heard_;
};

}  // namespace corona
