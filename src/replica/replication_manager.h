// Coordinator-side replica placement (paper §4.1).
//
// "All the replicas who directly support some members of a group keep a copy
// of the state for that group.  At least two copies of the state exist at
// any moment, in order to provide a hot standby in the case of a server
// crash. ... When there is only one replica which supports members of a
// group, a backup is elected from one of the other servers."
//
// ReplicationManager tracks, per group, which leaf servers hold a state copy
// and which of those are members-driven vs backup assignments, and answers
// "does this group need a backup, and where should it go?".
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "util/ids.h"
#include "util/invariant.h"

namespace corona {

class ReplicationManager {
 public:
  // Minimum number of leaf copies to maintain (paper: 2).
  explicit ReplicationManager(std::size_t min_copies = 2)
      : min_copies_(min_copies) {}

  // -- membership-driven copies ------------------------------------------------
  void add_supporting_server(GroupId g, NodeId server);
  void remove_supporting_server(GroupId g, NodeId server);
  // -- backup copies ---------------------------------------------------------
  void add_backup(GroupId g, NodeId server);
  void remove_backup(GroupId g, NodeId server);

  void drop_group(GroupId g);
  // Removes `server` everywhere (server crash); returns the groups whose
  // copy count was reduced (candidates for new backups).
  std::vector<GroupId> drop_server(NodeId server);

  // Every server holding a copy (supporting or backup), in id order.
  std::vector<NodeId> holders(GroupId g) const;
  bool is_holder(GroupId g, NodeId server) const;
  bool is_backup(GroupId g, NodeId server) const;
  std::size_t copy_count(GroupId g) const;

  // If the group has fewer than min_copies holders, picks the first server
  // from `candidates` (startup order) that holds no copy yet.
  std::optional<NodeId> pick_backup(GroupId g,
                                    const std::vector<NodeId>& candidates) const;

  // A backup whose group regained enough member-driven copies can be
  // released; returns such backups.
  std::vector<NodeId> releasable_backups(GroupId g) const;

  // Structural invariant: a server is never both a supporting copy and a
  // backup for the same group (a member-driven copy subsumes the backup
  // assignment — double-counting would inflate copy_count and starve
  // pick_backup).
  InvariantReport check_invariants() const;

 private:
  friend struct ReplicationManagerTestAccess;  // invariant tests corrupt state

  struct Copies {
    std::set<NodeId> supporting;
    std::set<NodeId> backups;
  };
  std::map<GroupId, Copies> copies_;
  std::size_t min_copies_;
};

}  // namespace corona
