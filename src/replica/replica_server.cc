// Leaf-side logic, message routing, and the election protocol.
// Coordinator-side logic lives in coordinator.cc.
#include "replica/replica_server.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace corona {

ReplicaServer::ReplicaServer(ReplicaConfig cfg,
                             std::vector<NodeId> startup_servers,
                             GroupStore* store)
    : cfg_(cfg),
      registry_(std::move(startup_servers)),
      coord_fd_(cfg.fd_timeout),
      repl_(cfg.min_copies),
      leaf_fd_(cfg.fd_timeout),
      store_(store) {
  assert(!registry_.servers().empty());
  coordinator_ = registry_.servers().front();
  if (store_ == nullptr) {
    owned_store_ = std::make_unique<GroupStore>();
    store_ = owned_store_.get();
  }
}

ReplicaServer::~ReplicaServer() = default;

void ReplicaServer::on_start() {
  if (registry_.servers().front() == id()) {
    become_coordinator(1);
  } else {
    adopt_coordinator(registry_.servers().front(), 1);
  }
  set_timer(cfg_.fd_timeout / 2, kCoordCheckTimer);
}

std::vector<GroupHead> ReplicaServer::local_group_heads() const {
  std::vector<GroupHead> heads;
  heads.reserve(local_.size());
  for (const auto& [g, lg] : local_) {
    heads.push_back(GroupHead{g, lg.state.head_seq()});
  }
  return heads;
}

void ReplicaServer::adopt_coordinator(NodeId coord, std::uint64_t term) {
  role_ = Role::kLeaf;
  coordinator_ = coord;
  term_ = std::max<std::uint64_t>(term_, term);
  coord_fd_.unwatch(coordinator_);
  coord_fd_.watch(coordinator_, now());
  tally_.finish();

  if (coord == id()) return;
  // Register with the coordinator and report held state copies (used for
  // coordinator takeover pulls).
  Message hello;
  hello.type = MsgType::kServerHello;
  hello.epoch = term_;
  hello.u64s = encode_group_heads(local_group_heads());
  send(coordinator_, hello);

  // Re-register every local member so a freshly elected coordinator can
  // rebuild the global member->leaf map.  The sender_inclusive flag marks a
  // silent re-registration: no membership notices are broadcast for it.
  for (const auto& [g, lg] : local_) {
    for (const auto& [client, info] : lg.local_members) {
      Message op;
      op.type = MsgType::kGroupOp;
      op.fwd_type = MsgType::kJoin;
      op.group = g;
      op.sender = client;
      op.origin_server = id();
      op.role = info.role;
      op.notify_membership = info.notify;
      op.sender_inclusive = true;  // silent
      send(coordinator_, op);
    }
  }
}

const SharedState* ReplicaServer::local_state(GroupId g) const {
  auto it = local_.find(g);
  return it != local_.end() ? &it->second.state : nullptr;
}

const SharedState* ReplicaServer::coord_state(GroupId g) const {
  auto it = cgroups_.find(g);
  return it != cgroups_.end() ? &it->second.state : nullptr;
}

std::vector<NodeId> ReplicaServer::coord_holders(GroupId g) const {
  return repl_.holders(g);
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

// Replica dispatch surface: every MsgType must be handled below or waived.
// lint-dispatch: MsgType
// dispatch-ignore: kInvalid -- sentinel; the decoder rejects it upstream
// dispatch-ignore: kReply kDeliver -- emitted to clients, never received
// dispatch-ignore: kResendRequest -- sent to clients, handled client-side
void ReplicaServer::on_message(NodeId from, const Message& m) {
  if (from == coordinator_) coord_fd_.heard_from(from, now());
  if (is_coordinator()) leaf_fd_.heard_from(from, now());

  switch (m.type) {
    // ---- client protocol (leaf side) ----
    case MsgType::kJoin: leaf_handle_join(from, m); break;
    case MsgType::kLeave: leaf_handle_leave(from, m); break;
    case MsgType::kBcastState:
    case MsgType::kBcastUpdate: leaf_handle_bcast(from, m); break;
    case MsgType::kCreateGroup:
    case MsgType::kDeleteGroup:
    case MsgType::kLockRequest:
    case MsgType::kLockRelease:
    case MsgType::kReduceLog: leaf_handle_client(from, m); break;
    case MsgType::kGetMembership: {
      auto it = local_.find(m.group);
      if (it == local_.end()) {
        send(from, make_reply(Status::error(Errc::kNotFound), m.request_id));
        break;
      }
      Message info;
      info.type = MsgType::kMembershipInfo;
      info.group = m.group;
      info.request_id = m.request_id;
      for (const auto& [node, role] : it->second.global_members) {
        info.members.push_back(MemberInfo{node, role});
      }
      send(from, info);
      break;
    }
    case MsgType::kRetransmitReq: {
      // From a peer server: serve from the coordinator's authoritative copy.
      // From a client: serve from the leaf copy.
      if (is_coordinator() && registry_.contains(from)) {
        coord_handle_state_query(from, m);
      } else {
        auto it = local_.find(m.group);
        if (it == local_.end()) break;
        Message reply;
        reply.type = MsgType::kStateReply;
        reply.group = m.group;
        const SharedState& st = it->second.state;
        if (m.seq <= st.base_seq() && st.base_seq() > 0) {
          reply.seq = st.head_seq();
          reply.state = st.snapshot();
        } else {
          reply.seq = st.base_seq();
          for (const UpdateRecord& u : st.since(m.seq - 1)) {
            if (m.seq2 != 0 && u.seq > m.seq2) break;
            reply.updates.push_back(u);
          }
        }
        send(from, reply);
      }
      break;
    }
    case MsgType::kResendReply: {
      // Client-side crash recovery resend: route to the sequencer.
      if (is_coordinator()) {
        coord_handle_resend(from, m);
      } else {
        Message fwd = m;
        fwd.origin_server = id();
        send(coordinator_, fwd);
      }
      break;
    }

    // ---- inter-server protocol ----
    case MsgType::kServerHello: coord_handle_hello(from, m); break;
    case MsgType::kFwdMulticast: coord_handle_fwd_multicast(from, m); break;
    case MsgType::kGroupOp: coord_handle_group_op(from, m); break;
    case MsgType::kGroupOpResult: leaf_handle_group_op_result(m); break;
    case MsgType::kSeqMulticast: leaf_handle_seq_multicast(m); break;
    case MsgType::kStateQuery: {
      if (is_coordinator() && cgroups_.contains(m.group)) {
        coord_handle_state_query(from, m);
      } else if (local_.contains(m.group)) {
        // Takeover pull served from a leaf copy.
        const LocalGroup& lg = local_.at(m.group);
        Message reply;
        reply.type = MsgType::kStateReply;
        reply.group = m.group;
        reply.request_id = m.request_id;
        reply.seq = lg.state.base_seq();
        reply.state = lg.state.snapshot_at_base();
        reply.updates = lg.state.history();
        reply.text = lg.meta.name;
        reply.persistent = lg.meta.persistent;
        send(from, reply);
      } else {
        Message reply;
        reply.type = MsgType::kStateReply;
        reply.group = m.group;
        reply.request_id = m.request_id;
        reply.status = Errc::kNotFound;
        send(from, reply);
      }
      break;
    }
    case MsgType::kStateReply: {
      if (is_coordinator() && m.accept) {
        // Authoritative post-reconciliation push from the other coordinator.
        coord_handle_push(from, m);
      } else if (is_coordinator() && pending_fwd_.contains(m.group)) {
        // Reply to a takeover pull (coord_begin_takeover marked the group).
        coord_handle_takeover_state(from, m);
      } else {
        // Leaf-side install / gap fill — also on a coordinator that serves
        // local clients of its own.
        leaf_handle_state_reply(from, m);
      }
      break;
    }
    case MsgType::kHeartbeat: {
      if (from == coordinator_) {
        send(from, make_heartbeat_ack(m.epoch));
      } else if (m.epoch > term_ && !is_coordinator()) {
        // A healed partition surfaced a coordinator with a newer term.
        adopt_coordinator(from, m.epoch);
        send(from, make_heartbeat_ack(m.epoch));
      }
      break;
    }
    case MsgType::kHeartbeatAck: coord_handle_heartbeat_ack(from, m); break;
    case MsgType::kServerList:
      registry_.set_servers(m.nodes, m.epoch);
      break;
    case MsgType::kElectionClaim: handle_claim(from, m); break;
    case MsgType::kElectionVote: handle_vote(from, m); break;
    case MsgType::kCoordAnnounce: handle_announce(from, m); break;
    case MsgType::kBackupAssign: {
      if (m.accept) {
        if (!local_.contains(m.group)) leaf_request_state(m.group);
      } else {
        // Copy released: no local members and enough copies elsewhere.
        auto it = local_.find(m.group);
        if (it != local_.end() && it->second.local_members.empty()) {
          local_.erase(it);
        }
      }
      break;
    }
    case MsgType::kGroupDeleted: leaf_handle_group_deleted(m); break;
    case MsgType::kLogReduced: leaf_handle_log_reduced(m); break;
    case MsgType::kMembershipNotice: leaf_handle_notice(m); break;
    case MsgType::kDigestRequest: coord_handle_digest_request(from, m); break;
    case MsgType::kDigestReply: coord_handle_digest_reply(from, m); break;
    default:
      LOG_WARN("replica", "unexpected ", msg_type_name(m.type), " at ",
               id().value);
      break;
  }
}

void ReplicaServer::on_timer(std::uint64_t tag) {
  switch (tag) {
    case kHeartbeatTimer:
      if (is_coordinator()) {
        coord_heartbeat_tick();
        set_timer(cfg_.heartbeat_interval, kHeartbeatTimer);
      }
      break;
    case kCoordCheckTimer:
      if (!is_coordinator()) leaf_check_coordinator();
      set_timer(cfg_.fd_timeout / 2, kCoordCheckTimer);
      break;
    case kElectionTimer:
      if (tally_.in_progress()) {
        // Quorum over responders: in a partition only same-side servers can
        // answer, which is what lets both subsets "evolve separately"
        // (§4.2).  Any nack aborts (the coordinator is alive somewhere), and
        // winning needs at least one positive witness besides the claimant
        // itself — unless the claimant genuinely is the only server left —
        // so that slow links alone can never usurp a live coordinator.
        const std::size_t responders = tally_.acks() + tally_.nacks() + 1;
        const bool alone = registry_.size() <= 2;  // self + dead coordinator
        if (tally_.nacks() == 0 && tally_.acks() + 1 > responders / 2 &&
            (tally_.acks() >= 1 || alone)) {
          become_coordinator(tally_.epoch());
        }
        tally_.finish();
      }
      break;
    case kTakeoverTimer:
      if (is_coordinator()) coord_begin_takeover();
      break;
    case kFlushTimer:
      if (is_coordinator()) {
        coord_flush_tick();
        set_timer(cfg_.flush_interval, kFlushTimer);
      }
      break;
    case kCoordBatchTimer:
      coord_batch_timer_ = 0;
      coord_flush_outbox();
      break;
    case kLeafBatchTimer:
      leaf_batch_timer_ = 0;
      leaf_flush_outbox();
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Leaf: joins and state transfer
// ---------------------------------------------------------------------------

void ReplicaServer::leaf_request_state(GroupId g) {
  if (!awaiting_state_.insert(g).second) return;
  Message q;
  q.type = MsgType::kStateQuery;
  q.group = g;
  q.origin_server = id();
  ++stats_.state_pulls;
  send(coordinator_, q);
}

void ReplicaServer::leaf_handle_join(NodeId from, const Message& m) {
  auto it = local_.find(m.group);
  if (it == local_.end()) {
    pending_joins_[m.group].emplace_back(from, m);
    leaf_request_state(m.group);
    return;
  }
  leaf_serve_join(it->second, from, m);
}

void ReplicaServer::leaf_serve_join(LocalGroup& lg, NodeId client,
                                    const Message& m) {
  Message reply;
  reply.type = MsgType::kJoinReply;
  reply.group = m.group;
  reply.request_id = m.request_id;

  if (lg.local_members.contains(client)) {
    reply.status = Errc::kAlreadyExists;
    reply.text = "already a member";
    send(client, reply);
    return;
  }
  lg.local_members[client] = LocalMember{m.role, m.notify_membership};
  lg.global_members[client] = m.role;

  // Local-first join (§4.1): served entirely from the leaf's copy, without
  // involving the existing members or waiting for the coordinator.
  TransferContent t = build_transfer(lg.state, m.policy);
  reply.seq = t.base_seq;
  reply.state = std::move(t.snapshot);
  reply.updates = std::move(t.updates);
  for (const auto& [node, role] : lg.global_members) {
    reply.members.push_back(MemberInfo{node, role});
  }
  send(client, reply);

  forward_group_op(client, m);
}

void ReplicaServer::forward_group_op(NodeId client, const Message& m) {
  Message op = m;
  op.type = MsgType::kGroupOp;
  op.fwd_type = m.type;
  op.sender = client;
  op.origin_server = id();
  send(coordinator_, op);
}

void ReplicaServer::leaf_handle_leave(NodeId from, const Message& m) {
  auto it = local_.find(m.group);
  if (it == local_.end() || !it->second.local_members.contains(from)) {
    send(from, make_reply(Status::error(Errc::kNotMember), m.request_id));
    return;
  }
  it->second.local_members.erase(from);
  it->second.global_members.erase(from);
  send(from, make_reply(Status::ok(), m.request_id));
  forward_group_op(from, m);
}

void ReplicaServer::leaf_handle_client(NodeId from, const Message& m) {
  // Create/delete/locks/reduce are coordinator decisions; forward verbatim.
  forward_group_op(from, m);
}

void ReplicaServer::leaf_handle_bcast(NodeId from, const Message& m) {
  auto it = local_.find(m.group);
  if (it == local_.end() || !it->second.local_members.contains(from)) {
    send(from, make_reply(Status::error(Errc::kNotMember), m.request_id));
    return;
  }
  Message fwd = m;
  fwd.type = MsgType::kFwdMulticast;
  fwd.fwd_type = m.type;
  fwd.sender = from;
  fwd.origin_server = id();
  ++stats_.forwarded;
  send(coordinator_, fwd);
}

// ---------------------------------------------------------------------------
// Leaf: sequenced multicast fan-out
// ---------------------------------------------------------------------------

void ReplicaServer::leaf_handle_seq_multicast(const Message& m) {
  auto it = local_.find(m.group);
  if (it == local_.end()) return;  // copy released; stale fan-out
  LocalGroup& lg = it->second;

  UpdateRecord rec;
  rec.seq = m.seq;
  rec.kind = m.kind;
  rec.object = m.object;
  rec.data = m.payload;
  rec.sender = m.sender;
  rec.timestamp = m.timestamp;
  rec.request_id = m.request_id;

  const SeqNo expected = lg.state.head_seq() + 1;
  if (rec.seq < expected) return;  // duplicate
  if (rec.seq > expected) {
    if (!lg.awaiting_fill) {
      lg.awaiting_fill = true;
      Message req;
      req.type = MsgType::kRetransmitReq;
      req.group = m.group;
      req.seq = expected;
      req.seq2 = rec.seq;
      req.origin_server = id();
      send(coordinator_, req);
    }
    return;
  }
  rt().charge_cpu(id(), cfg_.state_cpu_per_msg +
                            static_cast<Duration>(cfg_.state_cpu_per_byte *
                                                  double(rec.data.size())));
  leaf_apply_and_fanout(lg, rec, m.sender_inclusive, m.sender);
}

void ReplicaServer::leaf_apply_and_fanout(LocalGroup& lg,
                                          const UpdateRecord& rec,
                                          bool sender_inclusive,
                                          NodeId origin) {
  lg.state.apply(rec);
  const Message out = make_deliver(lg.meta.id, rec);
  if (cfg_.batch_max_msgs > 1) {
    // Batched fan-out: the record is applied immediately (ordering and gap
    // detection unchanged); only the kDeliver frames coalesce per client.
    for (const auto& [member, info] : lg.local_members) {
      if (!sender_inclusive && member == origin) continue;
      leaf_outbox_[member].push_back(out);
      ++stats_.fanout_deliveries;
    }
    ++leaf_outbox_msgs_;
    if (leaf_outbox_msgs_ >= cfg_.batch_max_msgs) {
      if (leaf_batch_timer_ != 0) {
        cancel_timer(leaf_batch_timer_);
        leaf_batch_timer_ = 0;
      }
      leaf_flush_outbox();
    } else if (leaf_batch_timer_ == 0) {
      leaf_batch_timer_ = set_timer(cfg_.batch_max_delay, kLeafBatchTimer);
    }
    return;
  }
  // Unbatched leaf fan-out: one encode of the kDeliver for all local
  // members on engines that serialize at the sender.
  std::vector<NodeId> recipients;
  recipients.reserve(lg.local_members.size());
  for (const auto& [member, info] : lg.local_members) {
    if (!sender_inclusive && member == origin) continue;
    recipients.push_back(member);
  }
  fanout(recipients, out);
  stats_.fanout_deliveries += recipients.size();
}

void ReplicaServer::leaf_flush_outbox() {
  leaf_outbox_msgs_ = 0;
  if (leaf_outbox_.empty()) return;
  auto outbox = std::move(leaf_outbox_);
  leaf_outbox_.clear();
  for (auto& [client, msgs] : outbox) {
    if (msgs.size() > 1) ++stats_.fanout_batch_frames;
    send_batch(client, msgs);
  }
}

// ---------------------------------------------------------------------------
// Leaf: state replies (installs, gap fills, authoritative pushes)
// ---------------------------------------------------------------------------

void ReplicaServer::leaf_install_state(GroupId g, const Message& m) {
  LocalGroup lg;
  lg.meta = GroupMeta{g, m.text, m.persistent};
  lg.state.load(m.seq, m.state);
  for (const UpdateRecord& u : m.updates) lg.state.apply(u);
  auto [it, inserted] = local_.insert_or_assign(g, std::move(lg));
  (void)inserted;
}

void ReplicaServer::leaf_handle_state_reply(NodeId from, const Message& m) {
  (void)from;
  const GroupId g = m.group;

  if (m.status != Errc::kOk) {
    awaiting_state_.erase(g);
    // Reject any joins waiting on this group.
    auto pit = pending_joins_.find(g);
    if (pit != pending_joins_.end()) {
      for (auto& [client, join] : pit->second) {
        Message reply;
        reply.type = MsgType::kJoinReply;
        reply.group = g;
        reply.request_id = join.request_id;
        reply.status = m.status;
        send(client, reply);
      }
      pending_joins_.erase(pit);
    }
    return;
  }

  if (m.accept) {
    // Authoritative push (partition reconciliation): replace the copy and
    // resynchronize local members with a full snapshot.
    auto it = local_.find(g);
    if (it == local_.end()) return;
    auto members = std::move(it->second.local_members);
    auto global = std::move(it->second.global_members);
    leaf_install_state(g, m);
    LocalGroup& lg = local_.at(g);
    lg.local_members = std::move(members);
    lg.global_members = std::move(global);
    leaf_push_snapshot_to_members(lg);
    return;
  }

  auto it = local_.find(g);
  if (it == local_.end()) {
    // Fresh install for pending joins / backup assignment.
    awaiting_state_.erase(g);
    leaf_install_state(g, m);
    LocalGroup& lg = local_.at(g);
    auto pit = pending_joins_.find(g);
    if (pit != pending_joins_.end()) {
      auto joins = std::move(pit->second);
      pending_joins_.erase(pit);
      for (auto& [client, join] : joins) leaf_serve_join(lg, client, join);
    }
    return;
  }

  // Gap fill: apply the missing records in order and fan them out.
  LocalGroup& lg = it->second;
  lg.awaiting_fill = false;
  if (!m.state.empty()) {
    // The gap was reduced away at the coordinator; reload wholesale.
    auto members = std::move(lg.local_members);
    auto global = std::move(lg.global_members);
    leaf_install_state(g, m);
    LocalGroup& fresh = local_.at(g);
    fresh.local_members = std::move(members);
    fresh.global_members = std::move(global);
    leaf_push_snapshot_to_members(fresh);
    return;
  }
  for (const UpdateRecord& u : m.updates) {
    if (u.seq == lg.state.head_seq() + 1) {
      leaf_apply_and_fanout(lg, u, /*sender_inclusive=*/true, u.sender);
    }
  }
}

void ReplicaServer::leaf_push_snapshot_to_members(LocalGroup& lg) {
  // Queued deliveries must not arrive after a snapshot that supersedes them.
  leaf_flush_outbox();
  Message push;
  push.type = MsgType::kStateReply;
  push.group = lg.meta.id;
  push.seq = lg.state.head_seq();
  push.state = lg.state.snapshot();
  for (const auto& [member, info] : lg.local_members) {
    send(member, push);
  }
}

// ---------------------------------------------------------------------------
// Leaf: notifications from the coordinator
// ---------------------------------------------------------------------------

void ReplicaServer::leaf_handle_notice(const Message& m) {
  auto it = local_.find(m.group);
  if (it == local_.end()) return;
  LocalGroup& lg = it->second;
  if (m.accept) {
    lg.global_members[m.sender] = m.role;
  } else {
    lg.global_members.erase(m.sender);
  }
  for (const auto& [member, info] : lg.local_members) {
    if (info.notify && !(member == m.sender)) send(member, m);
  }
}

void ReplicaServer::leaf_handle_group_op_result(const Message& m) {
  switch (m.fwd_type) {
    case MsgType::kLockGrant: {
      Message grant;
      grant.type = MsgType::kLockGrant;
      grant.group = m.group;
      grant.object = m.object;
      grant.request_id = m.request_id;
      send(m.sender, grant);
      break;
    }
    case MsgType::kReduceLog: {
      Message done;
      done.type = MsgType::kLogReduced;
      done.group = m.group;
      done.seq = m.seq;
      done.request_id = m.request_id;
      send(m.sender, done);
      break;
    }
    case MsgType::kJoin:
    case MsgType::kLeave:
      // Already acknowledged local-first; a failed join at the coordinator
      // (e.g. group deleted concurrently) surfaces as an error here.
      if (m.status != Errc::kOk) {
        send(m.sender, make_reply(Status{m.status, m.text}, m.request_id));
      }
      break;
    default:
      send(m.sender, make_reply(Status{m.status, m.text}, m.request_id));
      break;
  }
}

void ReplicaServer::leaf_handle_group_deleted(const Message& m) {
  auto it = local_.find(m.group);
  if (it == local_.end()) return;
  Message note;
  note.type = MsgType::kGroupDeleted;
  note.group = m.group;
  for (const auto& [member, info] : it->second.local_members) {
    send(member, note);
  }
  local_.erase(it);
  pending_joins_.erase(m.group);
  awaiting_state_.erase(m.group);
}

void ReplicaServer::leaf_handle_log_reduced(const Message& m) {
  auto it = local_.find(m.group);
  if (it != local_.end()) it->second.state.reduce_to(m.seq);
}

// ---------------------------------------------------------------------------
// Election (paper §4.2)
// ---------------------------------------------------------------------------

void ReplicaServer::leaf_check_coordinator() {
  if (tally_.in_progress()) return;
  // Position among the non-coordinator servers determines the staged
  // timeout: first-in-list claims after t, second after 2t, ...
  std::size_t position = 0;
  for (NodeId s : registry_.servers()) {
    if (s == coordinator_) continue;
    if (s == id()) break;
    ++position;
  }
  const Duration silence = coord_fd_.silence(coordinator_, now());
  if (silence > claim_delay(position, cfg_.fd_timeout)) {
    start_claim();
  }
}

void ReplicaServer::start_claim() {
  const std::uint64_t claim_term = std::max<std::uint64_t>(term_, voted_term_) + 1;
  const std::size_t remaining =
      registry_.size() - (registry_.contains(coordinator_) ? 1 : 0);
  tally_.start(claim_term, remaining);
  voted_term_ = claim_term;
  ++stats_.elections_started;
  LOG_INFO("election", "server ", id().value, " claims term ", claim_term);
  for (NodeId s : registry_.servers()) {
    if (s == id()) continue;
    send(s, make_election_claim(id(), claim_term));
  }
  set_timer(cfg_.election_window, kElectionTimer);
}

void ReplicaServer::handle_claim(NodeId from, const Message& m) {
  bool accept;
  if (is_coordinator()) {
    // "If the first server wrongfully assumes that the coordinator is down,
    // (some of) the other servers will notice this and will respond with a
    // nack" — the strongest such witness is the coordinator itself.
    accept = false;
  } else if (m.epoch <= voted_term_ || m.epoch <= term_) {
    accept = false;
  } else {
    accept = coord_fd_.is_suspect(coordinator_, now());
    if (accept) voted_term_ = m.epoch;
  }
  send(from, make_election_vote(m.epoch, accept));
}

void ReplicaServer::handle_vote(NodeId from, const Message& m) {
  if (!tally_.in_progress()) return;
  tally_.vote(m.epoch, from, m.accept);
  if (tally_.won()) {
    const std::uint64_t t = tally_.epoch();
    tally_.finish();
    become_coordinator(t);
  } else if (tally_.lost()) {
    tally_.finish();
  }
}

void ReplicaServer::handle_announce(NodeId from, const Message& m) {
  if (m.epoch < term_) return;  // stale
  if (is_coordinator() && !(from == id())) {
    // A coordinator with a newer term absorbs this one (post-partition
    // healing): demote, relay the announce to our side's servers so they
    // follow, and re-register as a leaf.
    if (m.epoch > term_) {
      std::vector<NodeId> my_side = registry_.servers();
      cgroups_.clear();
      role_ = Role::kLeaf;
      adopt_coordinator(m.sender, m.epoch);
      for (NodeId s : my_side) {
        if (!(s == id()) && !(s == m.sender)) send(s, m);
      }
    }
    return;
  }
  if (!(coordinator_ == m.sender) || m.epoch > term_) {
    adopt_coordinator(m.sender, m.epoch);
  }
}

}  // namespace corona
