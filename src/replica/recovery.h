// Crash-recovery planning (paper §4.2 / §6).
//
// Two recovery flows use this module:
//
//   * Coordinator takeover — a newly elected coordinator announces itself;
//     every leaf replies with a hello that carries (group, head-seq) pairs
//     for the state copies it holds.  plan_takeover() compares those against
//     the new coordinator's own copies and decides which groups to pull, and
//     from whom (the freshest holder).
//
//   * Restart from stable storage — a rebooted server recovers its durable
//     checkpoint + flushed log; updates lost with the unflushed tail are
//     re-fetched from the original senders ("the update message can be
//     retrieved ... from the original sender of the message, based on the
//     sequence number assigned to the message", §6) or, in the replicated
//     configuration, from another holder via the same pull plan.
#pragma once

#include <map>
#include <vector>

#include "util/ids.h"

namespace corona {

struct GroupHead {
  GroupId group;
  SeqNo head = 0;

  friend bool operator==(const GroupHead&, const GroupHead&) = default;
};

// Wire helpers: (group, head) pairs travel in Message::u64s.
std::vector<std::uint64_t> encode_group_heads(const std::vector<GroupHead>& v);
std::vector<GroupHead> decode_group_heads(const std::vector<std::uint64_t>& u);

struct PullDirective {
  NodeId source;
  SeqNo remote_head = 0;
};

// For every group some leaf knows about: pull from the freshest holder if
// that holder is ahead of `local_heads` (groups absent locally count as
// head 0).  Deterministic: ties go to the lowest server id.
std::map<GroupId, PullDirective> plan_takeover(
    const std::map<NodeId, std::vector<GroupHead>>& reports,
    const std::map<GroupId, SeqNo>& local_heads);

}  // namespace corona
