#include "replica/replication_manager.h"

#include <algorithm>

namespace corona {

void ReplicationManager::add_supporting_server(GroupId g, NodeId server) {
  Copies& c = copies_[g];
  c.supporting.insert(server);
  // A member-driven copy subsumes a backup assignment.
  c.backups.erase(server);
  CORONA_CHECK_INVARIANTS(*this);
}

void ReplicationManager::remove_supporting_server(GroupId g, NodeId server) {
  auto it = copies_.find(g);
  if (it == copies_.end()) return;
  it->second.supporting.erase(server);
}

void ReplicationManager::add_backup(GroupId g, NodeId server) {
  Copies& c = copies_[g];
  if (!c.supporting.contains(server)) c.backups.insert(server);
  CORONA_CHECK_INVARIANTS(*this);
}

void ReplicationManager::remove_backup(GroupId g, NodeId server) {
  auto it = copies_.find(g);
  if (it == copies_.end()) return;
  it->second.backups.erase(server);
}

void ReplicationManager::drop_group(GroupId g) { copies_.erase(g); }

std::vector<GroupId> ReplicationManager::drop_server(NodeId server) {
  std::vector<GroupId> reduced;
  for (auto& [g, c] : copies_) {
    const bool had = c.supporting.erase(server) + c.backups.erase(server) > 0;
    if (had) reduced.push_back(g);
  }
  return reduced;
}

std::vector<NodeId> ReplicationManager::holders(GroupId g) const {
  std::vector<NodeId> out;
  auto it = copies_.find(g);
  if (it == copies_.end()) return out;
  out.assign(it->second.supporting.begin(), it->second.supporting.end());
  for (NodeId b : it->second.backups) out.push_back(b);
  std::sort(out.begin(), out.end());
  return out;
}

bool ReplicationManager::is_holder(GroupId g, NodeId server) const {
  auto it = copies_.find(g);
  if (it == copies_.end()) return false;
  return it->second.supporting.contains(server) ||
         it->second.backups.contains(server);
}

bool ReplicationManager::is_backup(GroupId g, NodeId server) const {
  auto it = copies_.find(g);
  return it != copies_.end() && it->second.backups.contains(server);
}

std::size_t ReplicationManager::copy_count(GroupId g) const {
  auto it = copies_.find(g);
  if (it == copies_.end()) return 0;
  return it->second.supporting.size() + it->second.backups.size();
}

std::optional<NodeId> ReplicationManager::pick_backup(
    GroupId g, const std::vector<NodeId>& candidates) const {
  if (copy_count(g) >= min_copies_) return std::nullopt;
  for (NodeId c : candidates) {
    if (!is_holder(g, c)) return c;
  }
  return std::nullopt;
}

InvariantReport ReplicationManager::check_invariants() const {
  InvariantReport rep;
  for (const auto& [g, c] : copies_) {
    for (NodeId s : c.supporting) {
      if (c.backups.contains(s)) {
        rep.fail("ReplicationManager: node:" + std::to_string(s.value) +
                 " is both supporting and backup for group:" +
                 std::to_string(g.value));
      }
    }
  }
  return rep;
}

std::vector<NodeId> ReplicationManager::releasable_backups(GroupId g) const {
  std::vector<NodeId> out;
  auto it = copies_.find(g);
  if (it == copies_.end()) return out;
  if (it->second.supporting.size() >= min_copies_) {
    out.assign(it->second.backups.begin(), it->second.backups.end());
  }
  return out;
}

}  // namespace corona
