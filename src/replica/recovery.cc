#include "replica/recovery.h"

namespace corona {

std::vector<std::uint64_t> encode_group_heads(
    const std::vector<GroupHead>& v) {
  std::vector<std::uint64_t> out;
  out.reserve(v.size() * 2);
  for (const GroupHead& gh : v) {
    out.push_back(gh.group.value);
    out.push_back(gh.head);
  }
  return out;
}

std::vector<GroupHead> decode_group_heads(
    const std::vector<std::uint64_t>& u) {
  std::vector<GroupHead> out;
  out.reserve(u.size() / 2);
  for (std::size_t i = 0; i + 1 < u.size(); i += 2) {
    out.push_back(GroupHead{GroupId(u[i]), u[i + 1]});
  }
  return out;
}

std::map<GroupId, PullDirective> plan_takeover(
    const std::map<NodeId, std::vector<GroupHead>>& reports,
    const std::map<GroupId, SeqNo>& local_heads) {
  // Freshest holder per group; std::map iteration makes ties deterministic
  // (lowest server id seen first wins because later entries must be
  // strictly fresher to replace it).
  std::map<GroupId, PullDirective> best;
  for (const auto& [server, heads] : reports) {
    for (const GroupHead& gh : heads) {
      auto it = best.find(gh.group);
      if (it == best.end() || gh.head > it->second.remote_head) {
        best[gh.group] = PullDirective{server, gh.head};
      }
    }
  }
  // Keep only groups where the best remote copy beats the local one.
  std::map<GroupId, PullDirective> out;
  for (const auto& [group, directive] : best) {
    auto lit = local_heads.find(group);
    const SeqNo local = lit != local_heads.end() ? lit->second : 0;
    const bool known_locally = lit != local_heads.end();
    if (!known_locally || directive.remote_head > local) {
      out.emplace(group, directive);
    }
  }
  return out;
}

}  // namespace corona
