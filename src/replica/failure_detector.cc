#include "replica/failure_detector.h"

namespace corona {

void FailureDetector::watch(NodeId peer, TimePoint now) {
  last_heard_.emplace(peer, now);
}

void FailureDetector::unwatch(NodeId peer) { last_heard_.erase(peer); }

void FailureDetector::heard_from(NodeId peer, TimePoint now) {
  auto it = last_heard_.find(peer);
  if (it != last_heard_.end()) it->second = now;
}

std::vector<NodeId> FailureDetector::suspects(TimePoint now) const {
  std::vector<NodeId> out;
  for (const auto& [peer, last] : last_heard_) {
    if (now - last > timeout_) out.push_back(peer);
  }
  return out;
}

bool FailureDetector::is_suspect(NodeId peer, TimePoint now) const {
  auto it = last_heard_.find(peer);
  return it != last_heard_.end() && now - it->second > timeout_;
}

Duration FailureDetector::silence(NodeId peer, TimePoint now) const {
  auto it = last_heard_.find(peer);
  return it != last_heard_.end() ? now - it->second : 0;
}

}  // namespace corona
