// Network-partition reconciliation (paper §4.2).
//
// "In case of a network partition, there will ultimately exist two subsets
// of the server set which run without having knowledge about each other. ...
// When the network connectivity between the two subsets is re-established,
// for each group the last globally consistent state is identified based on
// the previous checkpoints and the sequence numbers assigned to the state
// update messages.  The application is given the choice of either rolling
// back to the consistent state, selecting one of the available updated
// states or evolving as two different groups."
//
// This module is the pure reconciliation engine: digest-based fork-point
// discovery plus the three application policies, operating on branch
// histories extracted from the two coordinators.  The message plumbing lives
// in coordinator/replica_server.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/shared_state.h"
#include "serial/message.h"
#include "util/ids.h"

namespace corona {

enum class PartitionPolicy : std::uint8_t {
  kRollback = 0,     // discard both branches; state reverts to the fork point
  kSelectPrimary,    // keep the primary branch; the other is discarded
  kEvolveSeparately, // the secondary branch becomes a brand-new group
};

const char* partition_policy_name(PartitionPolicy p);

// Offset added to a group id when kEvolveSeparately splits it.
constexpr std::uint64_t kSplitGroupIdOffset = 1u << 20;

// Order-sensitive digest of one sequenced record, used to find the fork
// point: two branches agree on a prefix iff the (seq, digest) pairs match.
std::uint64_t record_digest(const UpdateRecord& rec);

struct BranchDigest {
  // (seq, digest) pairs, ascending by seq, covering the branch's retained
  // history (post base/checkpoint).
  std::vector<std::pair<SeqNo, std::uint64_t>> entries;
  SeqNo base_seq = 0;
};

BranchDigest make_branch_digest(const SharedState& state);

// Highest seq on which both digests agree (the "last globally consistent
// state"); base_seq if they diverge immediately.  nullopt when the digests'
// retained ranges do not overlap enough to decide (reduction trimmed one
// side past the other's base) — callers then fall back to the common
// checkpoint base.
std::optional<SeqNo> find_fork_point(const BranchDigest& a,
                                     const BranchDigest& b);

// One side's divergent suffix.
struct Branch {
  std::vector<UpdateRecord> updates;  // records with seq > fork, ascending
};

Branch extract_branch(const SharedState& state, SeqNo fork);

// The outcome of reconciling one group.
struct ReconcileOutcome {
  PartitionPolicy policy;
  SeqNo fork = 0;
  // Authoritative post-merge history for the surviving group id: records to
  // re-sequence after the fork point (empty for kRollback).
  std::vector<UpdateRecord> merged_tail;
  // For kEvolveSeparately: the new group id of the secondary branch and its
  // records.
  std::optional<GroupId> split_group;
  std::vector<UpdateRecord> split_tail;
};

// Reconciles two branches of the same group.  `primary_wins` resolves
// kSelectPrimary: true keeps branch A.  For kSelectPrimary the paper's
// "selecting one of the available updated states" is decided by the
// application; here the caller passes the decision.
ReconcileOutcome reconcile_branches(GroupId group, SeqNo fork,
                                    Branch branch_a, Branch branch_b,
                                    PartitionPolicy policy,
                                    bool primary_wins = true);

// Rebuilds the state as of `fork` from a state whose retained history still
// covers it: load the base snapshot, replay records with seq <= fork.
SharedState state_at(const SharedState& state, SeqNo fork);

}  // namespace corona
