// Transport-independent execution model for protocol endpoints.
//
// Every Corona actor — client, stateful server, stateless baseline,
// replicated leaf, coordinator — is a `Node`: an event-driven state machine
// that reacts to messages and timers and emits sends through its `Runtime`.
// Two engines implement Runtime:
//
//   * SimRuntime    — deterministic discrete-event execution over the
//                     SimNetwork model (used by all benches and most tests);
//   * ThreadRuntime — one OS thread per node with bounded mailboxes (used by
//                     integration tests to exercise real concurrency).
//
// Protocol code is identical under both; nothing in src/core or src/replica
// knows which engine is driving it.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "serial/message.h"
#include "util/context.h"
#include "util/ids.h"
#include "util/time.h"

namespace corona {

class Node;

// Opaque timer handle; 0 is never a valid handle.
using TimerHandle = std::uint64_t;

class Runtime {
 public:
  virtual ~Runtime() = default;

  virtual TimePoint now() const = 0;

  // Sends `m` from `from` to `to`.  The message is serialized at the sender
  // and deserialized at the receiver; delivery is asynchronous and may be
  // silently dropped by failure injection (like a broken TCP connection —
  // endpoints learn about peers only through replies and heartbeats).
  CORONA_HOT_PATH virtual void send(NodeId from, NodeId to,
                                    const Message& m) = 0;

  // Arranges for `owner`'s on_timer(tag) after `delay`.  The returned handle
  // can cancel the timer before it fires.
  virtual TimerHandle set_timer(NodeId owner, Duration delay,
                                std::uint64_t tag) = 0;
  virtual void cancel_timer(TimerHandle handle) = 0;

  // Accounts `d` of CPU work to `node`'s host.  Under the simulator this
  // pushes the host's CPU timeline forward (the server's state-maintenance
  // cost in Figure 3 flows through here); under the threaded engine the work
  // is real and this is a no-op.
  virtual void charge_cpu(NodeId node, Duration d) {
    (void)node;
    (void)d;
  }

  // One-to-many send (the paper's §5.3 IP-multicast extension: "a version of
  // the communication system which uses both IP-multicast, whenever
  // possible, and point-to-point TCP connections").  The default expands to
  // point-to-point sends; the simulator models a true multicast: the sender
  // pays ONE send cost and one wire transmission regardless of fan-out.
  CORONA_HOT_PATH virtual void multicast(NodeId from,
                                         const std::vector<NodeId>& to,
                                         const Message& m) {
    for (NodeId t : to) send(from, t, m);
  }

  // Point-to-point fan-out of ONE message to many peers.  Semantically
  // identical to this default loop — each target gets an ordinary send —
  // but engines that serialize at the sender (thread, socket) override it
  // to encode `m` once and reuse the wire bytes for every target, instead
  // of paying one Message::encode per member.  Unlike multicast() this
  // never becomes an IP-multicast: use it where the recipients are real
  // point-to-point peers (per-member kDeliver fan-out).  The simulator
  // deliberately keeps the default so per-target costs and journals are
  // byte-identical with the pre-fanout code.
  CORONA_HOT_PATH virtual void fanout(NodeId from,
                                      const std::vector<NodeId>& to,
                                      const Message& m) {
    // heat: waive copy-in-hot-path -- same waiver as multicast(): the
    // default expansion is the semantic spec; engines override to encode
    // once.
    for (NodeId t : to) send(from, t, m);
  }

  // Many-to-one-peer send: `ms` travel to `to` as ONE coalesced batch frame
  // and are delivered as |ms| ordinary on_message calls in order.  The wire
  // format is unchanged — a batch is just the back-to-back concatenation of
  // the individual message frames — but engines amortize per-send costs over
  // the batch: the simulator charges one per-message CPU cost for the whole
  // batch on each end, and the socket engine turns the queue into a single
  // writev.  The batch is atomic with respect to loss: either the whole
  // frame arrives or none of it does (like one TCP segment run).  The
  // default expands to point-to-point sends (engines without a cheaper
  // primitive stay correct).
  CORONA_HOT_PATH virtual void send_batch(NodeId from, NodeId to,
                                          const std::vector<Message>& ms) {
    for (const Message& m : ms) send(from, to, m);
  }

  // Queues `bytes` at `node`'s log device and returns the completion time.
  // The device has its own timeline (paper §6: multicast proceeds in
  // parallel with disk logging); a server enforcing synchronous flush waits
  // for the returned instant via a timer.  `records` is the number of log
  // records the write covers — 1 for a classic per-message flush, more for
  // a group commit — used by the device model for amortization accounting.
  virtual TimePoint disk_write(NodeId node, std::size_t bytes,
                               std::size_t records = 1) {
    (void)node;
    (void)bytes;
    (void)records;
    return now();
  }
};

// Base class for protocol endpoints.  `bind` is called by the engine before
// on_start; subclasses use the protected helpers and never touch the engine
// directly.
class Node {
 public:
  virtual ~Node() = default;

  void bind(Runtime* rt, NodeId self) {
    rt_ = rt;
    self_ = self;
  }
  NodeId id() const { return self_; }

  // Engine entry points -------------------------------------------------
  // Under SocketRuntime every override runs on the epoll loop thread, so
  // the loop-context annotation propagates to all of them (CHA) and the
  // reach lint flags any blocking leaf they can transitively hit.
  CORONA_LOOP_CONTEXT virtual void on_start() {}
  CORONA_LOOP_CONTEXT virtual void on_message(NodeId from,
                                              const Message& m) = 0;
  CORONA_LOOP_CONTEXT virtual void on_timer(std::uint64_t tag) { (void)tag; }

 protected:
  TimePoint now() const { return rt().now(); }
  void send(NodeId to, const Message& m) { rt().send(self_, to, m); }
  void multicast(const std::vector<NodeId>& to, const Message& m) {
    rt().multicast(self_, to, m);
  }
  void fanout(const std::vector<NodeId>& to, const Message& m) {
    if (to.size() == 1) {
      rt().send(self_, to.front(), m);
      return;
    }
    if (!to.empty()) rt().fanout(self_, to, m);
  }
  void send_batch(NodeId to, const std::vector<Message>& ms) {
    if (ms.size() == 1) {
      rt().send(self_, to, ms.front());
      return;
    }
    if (!ms.empty()) rt().send_batch(self_, to, ms);
  }
  TimerHandle set_timer(Duration delay, std::uint64_t tag) {
    return rt().set_timer(self_, delay, tag);
  }
  void cancel_timer(TimerHandle h) { rt().cancel_timer(h); }

  Runtime& rt() const {
    assert(rt_ != nullptr && "node used before bind()");
    return *rt_;
  }

 private:
  Runtime* rt_ = nullptr;
  NodeId self_;
};

}  // namespace corona
