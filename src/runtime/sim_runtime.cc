#include "runtime/sim_runtime.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "util/logging.h"

namespace corona {

SimRuntime::SimRuntime() = default;

void SimRuntime::add_node(NodeId id, Node* node, HostId host) {
  assert(node != nullptr);
  assert(!nodes_.contains(id) && "node id already registered");
  nodes_[id] = node;
  network_.place(id, host);
  node->bind(this, id);
}

void SimRuntime::start() {
  // Schedule on_start in node-id order so startup is deterministic
  // regardless of hash-map iteration order.
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (NodeId id : ids) {
    if (!started_.insert(id).second) continue;
    Node* node = nodes_[id];
    sim_.queue().schedule_after(0, EventTag{EventKind::kStart, id.value, 0},
                                [node] { node->on_start(); });
  }
}

void SimRuntime::crash(NodeId id) {
  network_.crash_node(id);
  ++incarnation_[id];
}

void SimRuntime::restart(NodeId id, Node* fresh_node) {
  assert(fresh_node != nullptr);
  assert(nodes_.contains(id) && "restart of unknown node");
  network_.restart_node(id);
  ++incarnation_[id];
  nodes_[id] = fresh_node;
  fresh_node->bind(this, id);
  const std::uint64_t inc = incarnation_[id];
  sim_.queue().schedule_after(0, EventTag{EventKind::kStart, id.value, 0},
                              [this, id, inc] {
                                if (incarnation_[id] != inc ||
                                    network_.is_crashed(id))
                                  return;
                                nodes_[id]->on_start();
                              });
}

void SimRuntime::send(NodeId from, NodeId to, const Message& m) {
  assert(nodes_.contains(to) && "send to unregistered node");
  const Bytes wire = m.encode();
  const auto arrival = network_.transmit(from, to, wire.size(), sim_.now());
  if (!arrival) {
    LOG_TRACE("sim", "dropped ", msg_type_name(m.type), " ", from.value,
              " -> ", to.value);
    return;
  }
  if (drop_filter_ && drop_filter_(from, to, m)) {
    ++dropped_by_filter_;
    return;
  }
  schedule_arrival(from, to, wire, *arrival);
}

void SimRuntime::schedule_arrival(NodeId from, NodeId to, Bytes wire,
                                  TimePoint arrival) {
  // Two-stage delivery: the receive-side CPU is booked when the message
  // actually arrives, so receivers serialize in arrival order regardless of
  // when senders issued their sends.
  const std::uint64_t inc = incarnation_[to];
  const std::size_t size = wire.size();
  sim_.queue().schedule_at(
      arrival, EventTag{EventKind::kArrival, from.value, to.value},
      [this, from, to, wire = std::move(wire), inc, size] {
        if (incarnation_[to] != inc || network_.is_crashed(to)) return;
        const TimePoint deliver_at =
            network_.book_receive(to, size, sim_.now());
        sim_.queue().schedule_at(
            deliver_at, EventTag{EventKind::kDeliver, from.value, to.value},
            [this, from, to, wire, inc] {
              if (incarnation_[to] != inc || network_.is_crashed(to)) return;
              auto decoded = Message::decode(wire);
              assert(decoded.is_ok() &&
                     "self-encoded message failed to decode");
              nodes_[to]->on_message(from, decoded.value());
            });
      });
}

void SimRuntime::multicast(NodeId from, const std::vector<NodeId>& to,
                           const Message& m) {
  const Bytes wire = m.encode();
  const auto arrivals =
      network_.transmit_multicast(from, to, wire.size(), sim_.now());
  for (std::size_t i = 0; i < to.size(); ++i) {
    if (!arrivals[i]) continue;
    const NodeId dest = to[i];
    assert(nodes_.contains(dest) && "multicast to unregistered node");
    if (drop_filter_ && drop_filter_(from, dest, m)) {
      ++dropped_by_filter_;
      continue;
    }
    schedule_arrival(from, dest, wire, *arrivals[i]);
  }
}

void SimRuntime::send_batch(NodeId from, NodeId to,
                            const std::vector<Message>& ms) {
  if (ms.empty()) return;
  if (ms.size() == 1) {
    send(from, to, ms.front());
    return;
  }
  assert(nodes_.contains(to) && "send_batch to unregistered node");
  // The batch rides as one coalesced frame: per-message framing is unchanged
  // (each message is encoded exactly as it would be alone) but the sender
  // and receiver each pay a single per-message CPU cost for the whole run.
  std::vector<Bytes> wires;
  wires.reserve(ms.size());
  std::size_t total = 0;
  for (const Message& m : ms) {
    wires.push_back(m.encode());
    total += wires.back().size();
  }
  const auto arrival = network_.transmit_batch(from, to, total, ms.size(),
                                               sim_.now());
  if (!arrival) {
    LOG_TRACE("sim", "dropped batch of ", ms.size(), " ", from.value, " -> ",
              to.value);
    return;
  }
  if (drop_filter_) {
    // The filter sees each message; a batch is atomic on the wire, so any
    // filtered message drops the whole frame (a dying connection loses the
    // segment run, not individual messages inside it).
    for (const Message& m : ms) {
      if (drop_filter_(from, to, m)) {
        ++dropped_by_filter_;
        return;
      }
    }
  }
  const std::uint64_t inc = incarnation_[to];
  sim_.queue().schedule_at(
      *arrival, EventTag{EventKind::kArrival, from.value, to.value},
      [this, from, to, wires = std::move(wires), inc, total] {
        if (incarnation_[to] != inc || network_.is_crashed(to)) return;
        // One receive booking for the coalesced frame...
        const TimePoint deliver_at =
            network_.book_receive(to, total, sim_.now());
        sim_.queue().schedule_at(
            deliver_at, EventTag{EventKind::kDeliver, from.value, to.value},
            [this, from, to, wires, inc] {
              if (incarnation_[to] != inc || network_.is_crashed(to)) return;
              // ...then the messages surface back-to-back, in send order.
              for (const Bytes& wire : wires) {
                if (incarnation_[to] != inc || network_.is_crashed(to)) return;
                auto decoded = Message::decode(wire);
                assert(decoded.is_ok() &&
                       "self-encoded message failed to decode");
                nodes_[to]->on_message(from, decoded.value());
              }
            });
      });
}

TimerHandle SimRuntime::set_timer(NodeId owner, Duration delay,
                                  std::uint64_t tag) {
  const TimerHandle handle = next_timer_++;
  const std::uint64_t inc = incarnation_[owner];
  const EventQueue::EventId ev = sim_.queue().schedule_after(
      delay, EventTag{EventKind::kTimer, owner.value, tag},
      [this, owner, tag, handle, inc] {
        timers_.erase(handle);
        if (incarnation_[owner] != inc || network_.is_crashed(owner)) return;
        nodes_[owner]->on_timer(tag);
      });
  timers_[handle] = TimerRecord{owner, ev};
  return handle;
}

void SimRuntime::charge_cpu(NodeId node, Duration d) {
  network_.charge_cpu(node, d, sim_.now());
}

TimePoint SimRuntime::disk_write(NodeId node, std::size_t bytes,
                                 std::size_t records) {
  auto [it, inserted] = disks_.try_emplace(node, DiskProfile{});
  return it->second.write(bytes, sim_.now(), records);
}

void SimRuntime::set_disk(NodeId node, DiskProfile profile) {
  disks_.insert_or_assign(node, SimDisk(profile));
}

const SimDisk* SimRuntime::disk_of(NodeId node) const {
  auto it = disks_.find(node);
  return it != disks_.end() ? &it->second : nullptr;
}

void SimRuntime::cancel_timer(TimerHandle handle) {
  auto it = timers_.find(handle);
  if (it == timers_.end()) return;  // already fired or cancelled
  sim_.queue().cancel(it->second.event);
  timers_.erase(it);
}

}  // namespace corona
