// Concurrent engine: one OS thread per node, bounded mailboxes, real clocks.
//
// Used by integration tests to run the exact same protocol code as the
// simulator but under genuine concurrency — races in the protocol state
// machines would surface here.  Each node's handlers run on that node's own
// thread only, so Node subclasses stay single-threaded by construction
// (the same guarantee the discrete-event engine gives).
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/runtime.h"
#include "util/sync.h"

namespace corona {

class ThreadRuntime : public Runtime {
 public:
  ThreadRuntime();
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  // Registration must finish before start().
  void add_node(NodeId id, Node* node);

  // Spawns one thread per node and runs every on_start.
  // reach: waive blocking-in-loop-context, blocking-while-locked -- harness
  // entry point, never called from node handlers; reach's name-based CHA
  // would otherwise conflate it with unrelated start() methods.
  void start();

  // Drains mailboxes and joins all threads.  Safe to call twice.
  void stop();

  // Blocks until every mailbox is empty and every node is idle, or until
  // `timeout` elapses.  Returns true if quiescent.  Pending timers do not
  // count as work (they may be periodic heartbeats).
  bool wait_quiescent(Duration timeout);

  // Failure injection: messages to/from a "crashed" node are dropped; its
  // thread keeps running but sees no further input.
  void crash(NodeId id);
  void restore(NodeId id);

  // Runtime interface ------------------------------------------------------
  TimePoint now() const override;
  void send(NodeId from, NodeId to, const Message& m) override;
  // Encode-once fan-out: one Message::encode, the wire bytes copied into
  // each target's mailbox (vs. one encode per target via the default).
  void fanout(NodeId from, const std::vector<NodeId>& to,
              const Message& m) override;
  TimerHandle set_timer(NodeId owner, Duration delay,
                        std::uint64_t tag) override;
  void cancel_timer(TimerHandle handle) override;

 private:
  // Mailbox delivery of already-encoded wire bytes (shared by send/fanout).
  void deliver_wire(NodeId from, NodeId to, Bytes wire);
  struct Mail {
    NodeId from;
    Bytes wire;
  };
  struct TimerEntry {
    TimerHandle handle;
    std::uint64_t tag;
  };
  struct Worker {
    Node* node = nullptr;
    std::thread thread;
    // Acquired by the worker's own loop and by any thread sending to it;
    // worker_loop nests cancel_mu_ inside (mu before cancel_mu_ is the
    // global lock order — tools/lint/lock_order.py proves it stays acyclic).
    Mutex mu;
    CondVar cv;
    std::deque<Mail> mailbox CORONA_GUARDED_BY(mu);
    // deadline -> timers.
    std::multimap<TimePoint, TimerEntry> timers CORONA_GUARDED_BY(mu);
    bool stopping CORONA_GUARDED_BY(mu) = false;
    bool busy CORONA_GUARDED_BY(mu) = false;
    bool start_pending CORONA_GUARDED_BY(mu) = false;
  };

  void worker_loop(NodeId id, Worker& w);

  std::unordered_map<NodeId, std::unique_ptr<Worker>> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::chrono::steady_clock::time_point epoch_;
  Mutex cancel_mu_;
  std::vector<TimerHandle> cancelled_ CORONA_GUARDED_BY(cancel_mu_);
  std::atomic<std::uint64_t> next_timer_{1};
  Mutex crash_mu_;
  // Sorted so the per-send membership probe is O(log n) instead of a linear
  // scan; sends are the hot path, crash/restore are rare.
  std::set<NodeId> crashed_ CORONA_GUARDED_BY(crash_mu_);
};

}  // namespace corona
