#include "runtime/thread_runtime.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "util/logging.h"

namespace corona {

using std::chrono::microseconds;
using std::chrono::steady_clock;

ThreadRuntime::ThreadRuntime() : epoch_(steady_clock::now()) {}

ThreadRuntime::~ThreadRuntime() { stop(); }

void ThreadRuntime::add_node(NodeId id, Node* node) {
  assert(!started_.load() && "add_node after start");
  assert(node != nullptr);
  auto w = std::make_unique<Worker>();
  w->node = node;
  {
    // Registration runs before start(), so the lock is uncontended; taking
    // it keeps the guarded-field discipline visible to the analysis.
    MutexLock lock(w->mu);
    w->start_pending = true;
  }
  node->bind(this, id);
  auto [it, inserted] = workers_.emplace(id, std::move(w));
  assert(inserted && "duplicate node id");
  (void)it;
  (void)inserted;
}

void ThreadRuntime::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  for (auto& [id, w] : workers_) {
    Worker* wp = w.get();
    NodeId nid = id;
    wp->thread = std::thread([this, nid, wp] { worker_loop(nid, *wp); });
  }
}

void ThreadRuntime::stop() {
  if (!started_.load()) return;
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  for (auto& [id, w] : workers_) {
    {
      MutexLock lock(w->mu);
      w->stopping = true;
    }
    w->cv.notify_all();
  }
  for (auto& [id, w] : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

TimePoint ThreadRuntime::now() const {
  return std::chrono::duration_cast<microseconds>(steady_clock::now() - epoch_)
      .count();
}

void ThreadRuntime::send(NodeId from, NodeId to, const Message& m) {
  deliver_wire(from, to, m.encode());
}

void ThreadRuntime::fanout(NodeId from, const std::vector<NodeId>& to,
                           const Message& m) {
  if (to.empty()) return;
  Bytes wire = m.encode();
  for (std::size_t i = 0; i + 1 < to.size(); ++i) {
    deliver_wire(from, to[i], wire);
  }
  deliver_wire(from, to.back(), std::move(wire));
}

void ThreadRuntime::deliver_wire(NodeId from, NodeId to, Bytes wire) {
  {
    MutexLock lock(crash_mu_);
    if (crashed_.contains(from) || crashed_.contains(to)) {
      return;
    }
  }
  auto it = workers_.find(to);
  assert(it != workers_.end() && "send to unregistered node");
  Worker& w = *it->second;
  {
    MutexLock lock(w.mu);
    if (w.stopping) return;
    w.mailbox.push_back(Mail{from, std::move(wire)});
  }
  w.cv.notify_all();
}

TimerHandle ThreadRuntime::set_timer(NodeId owner, Duration delay,
                                     std::uint64_t tag) {
  auto it = workers_.find(owner);
  assert(it != workers_.end());
  Worker& w = *it->second;
  const TimerHandle handle = next_timer_.fetch_add(1);
  {
    MutexLock lock(w.mu);
    w.timers.emplace(now() + delay, TimerEntry{handle, tag});
  }
  w.cv.notify_all();
  return handle;
}

void ThreadRuntime::cancel_timer(TimerHandle handle) {
  MutexLock lock(cancel_mu_);
  cancelled_.push_back(handle);
}

void ThreadRuntime::crash(NodeId id) {
  MutexLock lock(crash_mu_);
  crashed_.insert(id);
}

void ThreadRuntime::restore(NodeId id) {
  MutexLock lock(crash_mu_);
  crashed_.erase(id);
}

bool ThreadRuntime::wait_quiescent(Duration timeout) {
  const auto deadline = steady_clock::now() + microseconds(timeout);
  while (steady_clock::now() < deadline) {
    bool quiet = true;
    for (auto& [id, w] : workers_) {
      MutexLock lock(w->mu);
      if (!w->mailbox.empty() || w->busy || w->start_pending) {
        quiet = false;
        break;
      }
    }
    if (quiet) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

void ThreadRuntime::worker_loop(NodeId id, Worker& w) {
  // Run on_start on the worker thread so nodes never see foreign threads.
  {
    MutexLock lock(w.mu);
    w.busy = true;
    lock.unlock();
    w.node->on_start();
    lock.lock();
    w.busy = false;
    w.start_pending = false;
  }

  while (true) {
    Mail mail;
    bool have_mail = false;
    std::uint64_t timer_tag = 0;
    bool have_timer = false;

    {
      MutexLock lock(w.mu);
      while (true) {
        if (w.stopping) return;

        // Expired timer?
        if (!w.timers.empty() && w.timers.begin()->first <= now()) {
          const TimerEntry entry = w.timers.begin()->second;
          w.timers.erase(w.timers.begin());
          bool is_cancelled = false;
          {
            MutexLock clock_(cancel_mu_);
            auto it = std::find(cancelled_.begin(), cancelled_.end(),
                                entry.handle);
            if (it != cancelled_.end()) {
              cancelled_.erase(it);
              is_cancelled = true;
            }
          }
          if (is_cancelled) continue;
          timer_tag = entry.tag;
          have_timer = true;
          w.busy = true;
          break;
        }

        if (!w.mailbox.empty()) {
          mail = std::move(w.mailbox.front());
          w.mailbox.pop_front();
          have_mail = true;
          w.busy = true;
          break;
        }

        if (w.timers.empty()) {
          w.cv.wait(lock);
        } else {
          const Duration sleep_us = w.timers.begin()->first - now();
          w.cv.wait_for(lock, std::max<Duration>(sleep_us, 1));
        }
      }
    }

    if (have_timer) {
      w.node->on_timer(timer_tag);
    } else if (have_mail) {
      bool dropped;
      {
        MutexLock lock(crash_mu_);
        dropped = crashed_.contains(id);
      }
      if (!dropped) {
        auto decoded = Message::decode(mail.wire);
        assert(decoded.is_ok());
        w.node->on_message(mail.from, decoded.value());
      }
    }

    {
      MutexLock lock(w.mu);
      w.busy = false;
    }
  }
}

}  // namespace corona
