// Deterministic engine: drives Nodes from the discrete-event simulator
// through the SimNetwork cost model.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "runtime/runtime.h"
#include "sim/sim_disk.h"
#include "sim/sim_network.h"
#include "sim/simulator.h"

namespace corona {

class SimRuntime : public Runtime {
 public:
  SimRuntime();

  Simulator& sim() { return sim_; }
  SimNetwork& network() { return network_; }

  // Registers `node` under `id`, placed on `host`.  The engine does not own
  // the node; harnesses keep nodes alive for the duration of the run.
  void add_node(NodeId id, Node* node, HostId host);

  // Calls on_start for every node that hasn't been started yet.
  void start();

  // Failure injection ----------------------------------------------------
  // Crash: in-flight and future messages to/from the node are dropped and
  // its pending timers are discarded.  The node object is NOT destroyed —
  // its in-memory state is simply unreachable, like a halted process.
  void crash(NodeId id);
  // Restart with a fresh node object (a rebooted process recovering from
  // stable storage).  Runs its on_start.
  void restart(NodeId id, Node* fresh_node);
  bool is_crashed(NodeId id) const { return network_.is_crashed(id); }

  // Runtime interface ------------------------------------------------------
  // Fault injection: messages for which the filter returns true are dropped
  // after the sender has paid its costs (a lossy link / dying connection).
  using DropFilter = std::function<bool(NodeId from, NodeId to, const Message&)>;
  void set_drop_filter(DropFilter filter) { drop_filter_ = std::move(filter); }
  void clear_drop_filter() { drop_filter_ = nullptr; }
  std::uint64_t dropped_by_filter() const { return dropped_by_filter_; }

  TimePoint now() const override { return sim_.now(); }
  void send(NodeId from, NodeId to, const Message& m) override;
  void multicast(NodeId from, const std::vector<NodeId>& to,
                 const Message& m) override;
  void send_batch(NodeId from, NodeId to,
                  const std::vector<Message>& ms) override;
  TimerHandle set_timer(NodeId owner, Duration delay,
                        std::uint64_t tag) override;
  void cancel_timer(TimerHandle handle) override;
  void charge_cpu(NodeId node, Duration d) override;
  // Models the write by advancing virtual time — never parks a thread, so
  // the reach lint must not follow it into real disk paths.
  CORONA_NONBLOCKING TimePoint disk_write(NodeId node, std::size_t bytes,
                                          std::size_t records = 1) override;

  // Configures the log-device model for `node` (default: paper-era disk).
  void set_disk(NodeId node, DiskProfile profile);
  const SimDisk* disk_of(NodeId node) const;

  // Run-loop passthrough.
  std::uint64_t run_until_idle(std::uint64_t max_events = UINT64_MAX) {
    return sim_.run_until_idle(max_events);
  }
  std::uint64_t run_for(Duration d) { return sim_.run_for(d); }
  std::uint64_t run_until(TimePoint t) { return sim_.run_until(t); }

 private:
  struct TimerRecord {
    NodeId owner;
    EventQueue::EventId event;
  };

  void schedule_arrival(NodeId from, NodeId to, Bytes wire, TimePoint arrival);

  Simulator sim_;
  SimNetwork network_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::unordered_set<NodeId> started_;
  std::unordered_map<TimerHandle, TimerRecord> timers_;
  std::unordered_map<NodeId, SimDisk> disks_;
  DropFilter drop_filter_;
  std::uint64_t dropped_by_filter_ = 0;
  TimerHandle next_timer_ = 1;
  // Incremented per node at crash/restart so stale deliveries and timers
  // scheduled for a previous incarnation are discarded.
  std::unordered_map<NodeId, std::uint64_t> incarnation_;
};

}  // namespace corona
