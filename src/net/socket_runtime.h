// SocketRuntime — the deployable engine: real TCP, one epoll loop thread.
//
// The third Runtime implementation, next to SimRuntime (deterministic
// discrete-event) and ThreadRuntime (one thread per node, in-process).  It
// speaks the existing wire protocol (Message::encode()/decode()) over
// length-prefixed frames (net/frame.h) on real point-to-point TCP
// connections, so every transport-independent Node — CoronaServer,
// CoronaClient, StatelessServer, ReplicaServer — deploys across processes
// and hosts with zero protocol-code changes.
//
// Execution model
//   One background thread runs an epoll event loop that owns every socket,
//   the connection table and the timer wheel.  All node handlers
//   (on_start/on_message/on_timer) run on that thread, so nodes keep the
//   single-threaded-by-construction guarantee of the other engines.
//   Runtime calls (send/set_timer/cancel_timer) may come from any thread —
//   node handlers on the loop thread or the application driving a
//   CoronaClient — and hand work to the loop through a mutex-guarded op
//   queue plus an eventfd wakeup.
//
// Connection lifecycle
//   Peers listed in the address book are dialed eagerly at start() and
//   redialed forever on failure with capped exponential backoff; the first
//   frame on every outbound connection is a hello identifying the local
//   node ids.  Inbound connections are accepted from anyone; their routes
//   are learned from the hello (and refreshed from message frames).  Sends
//   with no live route and no book entry are dropped silently — exactly the
//   lossy contract Runtime::send documents ("like a broken TCP connection").
//
// Backpressure
//   Outbound bytes queue per connection up to max_conn_queue_bytes; past
//   the cap new frames are dropped and counted (stats().messages_dropped)
//   rather than buffering without bound — slow receivers shed load instead
//   of OOMing the sender.  Frames queued toward a book peer that is
//   currently down wait in a bounded pending queue and flush on reconnect.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "net/address.h"
#include "net/frame.h"
#include "runtime/runtime.h"
#include "util/context.h"
#include "util/sync.h"

namespace corona::net {

struct SocketRuntimeConfig {
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Per-connection outbound queue cap (encoded frame bytes); beyond it new
  // frames are dropped.  Also bounds each down-peer pending queue.
  std::size_t max_conn_queue_bytes = 8 * 1024 * 1024;
  // Reconnect backoff: first retry after min, doubling to max.
  Duration reconnect_backoff_min = 50 * kMillisecond;
  Duration reconnect_backoff_max = 5 * kSecond;
  // Transport keepalive: send a ping on connections idle this long
  // (0 = off).  Protocol-level liveness (client heartbeats, coordinator
  // failure detection) rides on top and does not depend on this.
  Duration keepalive_interval = 0;
  // Close connections with no inbound traffic for this long (0 = off).
  // Must be generously larger than keepalive_interval when both are set.
  Duration peer_silence_timeout = 0;
};

class SocketRuntime : public Runtime {
 public:
  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t connects_attempted = 0;
    std::uint64_t connects_ok = 0;
    std::uint64_t accepts = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t reconnects_scheduled = 0;
    std::uint64_t corrupt_frames = 0;   // framing/decode errors (conn torn down)
    std::uint64_t messages_dropped = 0; // no route, queue overflow, or stopped
    std::uint64_t pings_sent = 0;
    std::uint64_t writev_calls = 0;     // gathered writes issued
    std::uint64_t frames_coalesced = 0; // frames covered by those writes
  };

  explicit SocketRuntime(SocketRuntimeConfig cfg = {});
  ~SocketRuntime() override;

  SocketRuntime(const SocketRuntime&) = delete;
  SocketRuntime& operator=(const SocketRuntime&) = delete;

  // -- setup (all before start()) -------------------------------------------
  void add_node(NodeId id, Node* node);
  void set_peer_address(NodeId id, Endpoint ep);
  void set_address_book(const AddressBook& book);

  // Binds and listens immediately (so callers learn an ephemeral port
  // before starting peers).  host is a numeric IPv4 address or a name;
  // port 0 picks one.  Returns the bound port.
  Result<std::uint16_t> listen(const std::string& host, std::uint16_t port);
  std::uint16_t listen_port() const { return listen_port_; }

  // Spawns the event loop; runs every node's on_start there, then dials
  // every address-book peer that is not a local node.
  void start();

  // Closes every connection and joins the loop.  Safe to call twice; the
  // destructor calls it.
  void stop();

  // Fault injection / tests: close the connection currently routing to
  // `peer` (reconnect machinery still applies if `peer` is in the book).
  void drop_connection(NodeId peer);

  Stats stats() const;

  // -- Runtime interface ----------------------------------------------------
  TimePoint now() const override;
  void send(NodeId from, NodeId to, const Message& m) override;
  // Batched send: all frames enter the peer's queue under one op (one lock
  // acquisition, one loop wakeup) and leave in as few gathered writes as the
  // socket accepts.  Loss stays atomic: a connection torn down mid-batch
  // loses the whole queued suffix together, never an interior frame.
  void send_batch(NodeId from, NodeId to,
                  const std::vector<Message>& ms) override;
  // Encode-once fan-out: the message is serialized once and the wire bytes
  // queued to each target (one op, one loop wakeup).  Per-connection FIFO
  // order against other sends from the same node is preserved — the op
  // queue is drained in order, so the expansion sits exactly where the
  // per-target send loop would have.
  void fanout(NodeId from, const std::vector<NodeId>& to,
              const Message& m) override;
  TimerHandle set_timer(NodeId owner, Duration delay,
                        std::uint64_t tag) override;
  void cancel_timer(TimerHandle handle) override;

 private:
  struct Op {
    enum class Kind {
      kSend, kSendBatch, kFanout, kSetTimer, kCancelTimer, kDrop
    } kind;
    // kSend / kSendBatch / kFanout
    NodeId from, to;
    Bytes wire;                    // kSend / kFanout (shared by all targets)
    std::vector<Bytes> wires;      // kSendBatch only
    std::vector<NodeId> targets;   // kFanout only
    // timers
    TimerHandle handle = 0;
    TimePoint deadline = 0;
    std::uint64_t tag = 0;
  };

  // One TCP connection (either direction), keyed by fd.
  struct Conn {
    int fd = -1;
    bool outbound = false;
    bool open = false;              // outbound: connect() completed + hello sent
    bool dead = false;              // marked for close; reaped by reap_dead()
    NodeId target;                  // outbound: the book peer we dialed
    FrameDecoder decoder;
    std::deque<Bytes> outq;         // encoded frames awaiting write
    std::size_t outq_bytes = 0;
    std::size_t wip_off = 0;        // bytes of outq.front() already written
    bool want_write = false;        // EPOLLOUT armed
    std::set<NodeId> claims;        // node ids routed over this connection
    TimePoint last_rx = 0;
    TimePoint last_tx = 0;

    explicit Conn(std::size_t max_frame) : decoder(max_frame) {}
  };

  // Book peer we keep dialed; holds traffic while the link is down.
  struct Peer {
    Endpoint addr;
    int fd = -1;                    // current conn (connecting or open)
    Duration backoff = 0;
    std::optional<TimePoint> next_connect_at;
    std::deque<Bytes> pending;      // frames awaiting a connection
    std::size_t pending_bytes = 0;
  };

  // loop() is the loop-context root; every callback it dispatches runs on
  // the epoll thread.  The syscall-bearing helpers below are certified
  // non-blocking: every fd they touch is O_NONBLOCK (sockets, eventfd,
  // listener), so writes/reads return EAGAIN instead of parking the loop.
  CORONA_LOOP_CONTEXT void loop();
  void drain_ops();
  void apply_send(NodeId from, NodeId to, Bytes wire);
  void apply_send_batch(NodeId from, NodeId to, std::vector<Bytes> wires);
  void queue_on_conn(Conn& c, Bytes frame);
  CORONA_NONBLOCKING void flush_conn(Conn& c);
  void update_epoll(Conn& c, bool want_write);
  CORONA_NONBLOCKING void start_connect(NodeId peer_id, Peer& peer);
  void schedule_reconnect(NodeId peer_id, Peer& peer);
  void on_connect_ready(Conn& c);
  CORONA_NONBLOCKING void on_readable(Conn& c);
  void handle_frame(Conn& c, Frame frame);
  void close_conn(int fd, bool schedule_redial);
  // Closing an fd inside an epoll batch could let accept() recycle the fd
  // number and mis-route later events in the same batch, so callbacks only
  // mark; the loop reaps at safe points.
  void mark_dead(Conn& c) { c.dead = true; }
  void reap_dead();
  CORONA_NONBLOCKING void accept_ready();
  void fire_due_timers();
  void sweep_keepalive();
  Duration next_wakeup_delay() const;
  CORONA_NONBLOCKING void wake();

  SocketRuntimeConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;

  // -- shared with callers --------------------------------------------------
  mutable Mutex mu_;
  std::deque<Op> ops_ CORONA_GUARDED_BY(mu_);

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_timer_{1};

  // -- loop-owned (no lock; touched only before start() or on the loop) -----
  std::map<NodeId, Node*> nodes_;
  std::map<NodeId, Peer> peers_;               // address-book peers
  std::map<int, std::unique_ptr<Conn>> conns_;
  std::map<NodeId, int> routes_;               // remote node -> fd
  // Timers: ordered by (deadline, handle) for pop-min; the index gives
  // O(log n) cancel.
  struct TimerRec {
    NodeId owner;
    std::uint64_t tag;
  };
  std::map<std::pair<TimePoint, TimerHandle>, TimerRec> timers_;
  std::map<TimerHandle, TimePoint> timer_index_;
  TimePoint last_keepalive_sweep_ = 0;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::thread loop_thread_;

  // Counters are atomics so stats() is safe from any thread while the loop
  // runs; all writes happen on the loop thread.
  struct AtomicStats {
    std::atomic<std::uint64_t> frames_sent{0}, frames_received{0};
    std::atomic<std::uint64_t> bytes_sent{0}, bytes_received{0};
    std::atomic<std::uint64_t> connects_attempted{0}, connects_ok{0};
    std::atomic<std::uint64_t> accepts{0}, disconnects{0};
    std::atomic<std::uint64_t> reconnects_scheduled{0};
    std::atomic<std::uint64_t> corrupt_frames{0}, messages_dropped{0};
    std::atomic<std::uint64_t> pings_sent{0};
    std::atomic<std::uint64_t> writev_calls{0}, frames_coalesced{0};
  };
  AtomicStats counters_;
};

}  // namespace corona::net
