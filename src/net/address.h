// Endpoints and the address book: how node ids map onto TCP addresses.
//
// The SocketRuntime keys everything by NodeId, exactly like the other two
// engines; deployment supplies a small NodeId -> host:port table (the
// "address book") naming the peers this process should maintain outbound
// connections to.  A client daemon's book holds just its server; a replica
// daemon's book holds the server mesh.  Peers NOT in the book can still
// talk to us by connecting in — their routes are learned from the hello
// frame — they just cannot be dialed.
//
// Formats accepted by the parsers (used by corona-serverd / corona-clientd
// flags and config files):
//
//   endpoint      host:port          e.g.  127.0.0.1:7700
//   book string   id=host:port[,id=host:port...]
//   book file     one `id=host:port` (or `id host:port`) per line,
//                 blank lines and `#` comments ignored
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/ids.h"
#include "util/result.h"

namespace corona::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

using AddressBook = std::map<NodeId, Endpoint>;

Result<Endpoint> parse_endpoint(const std::string& text);

// Parses `id=host:port` entries separated by commas or whitespace.
Result<AddressBook> parse_address_book(const std::string& text);

// Loads a book file (one entry per line; `#` comments, blank lines ok).
Result<AddressBook> load_address_book_file(const std::string& path);

}  // namespace corona::net
