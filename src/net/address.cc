#include "net/address.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace corona::net {

namespace {

Status bad(const std::string& what, const std::string& text) {
  return Status::error(Errc::kInvalidArgument, what + ": '" + text + "'");
}

}  // namespace

Result<Endpoint> parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    return bad("endpoint must be host:port", text);
  }
  Endpoint ep;
  ep.host = text.substr(0, colon);
  const std::string port_str = text.substr(colon + 1);
  unsigned long port = 0;
  for (char c : port_str) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return bad("port must be numeric", text);
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) return bad("port out of range", text);
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

Result<AddressBook> parse_address_book(const std::string& text) {
  AddressBook book;
  std::string entry;
  // Entries split on commas or any whitespace.
  std::string normalized = text;
  for (char& c : normalized) {
    if (c == ',' || c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  std::istringstream in(normalized);
  while (in >> entry) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return bad("book entry must be id=host:port", entry);
    }
    const std::string id_str = entry.substr(0, eq);
    std::uint64_t id = 0;
    for (char c : id_str) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return bad("node id must be numeric", entry);
      }
      id = id * 10 + static_cast<std::uint64_t>(c - '0');
    }
    auto ep = parse_endpoint(entry.substr(eq + 1));
    if (!ep.is_ok()) return ep.status();
    const auto [it, inserted] = book.emplace(NodeId{id}, ep.value());
    (void)it;
    if (!inserted) return bad("duplicate node id", entry);
  }
  if (book.empty()) return bad("empty address book", text);
  return book;
}

Result<AddressBook> load_address_book_file(const std::string& path) {
  // Config read at startup, never rewritten; lint: file-io-ok
  std::ifstream in(path);
  if (!in) {
    return Status::error(Errc::kNotFound, "cannot open book file: " + path);
  }
  std::string joined;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t first = line.find_first_not_of(" \t");
    line.erase(0, first == std::string::npos ? line.size() : first);
    // `id host:port` is accepted as a file-format nicety: the first run of
    // whitespace becomes the `=`.
    const std::size_t ws = line.find_first_of(" \t");
    if (ws != std::string::npos && line.find('=') == std::string::npos) {
      line[ws] = '=';
    }
    joined += line;
    joined += ' ';
  }
  if (joined.find_first_not_of(' ') == std::string::npos) {
    return Status::error(Errc::kInvalidArgument,
                         "book file has no entries: " + path);
  }
  return parse_address_book(joined);
}

}  // namespace corona::net
