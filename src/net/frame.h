// Stream framing for the TCP transport (see docs/PROTOCOL.md, "Stream
// framing & connection lifecycle").
//
// TCP is a byte stream: one write() can arrive split across many reads and
// many writes can coalesce into one read.  Every frame therefore carries a
// fixed 4-byte little-endian length prefix covering everything after it
// (kind byte + body), and the receiving side runs a FrameDecoder that
// reassembles frames incrementally from arbitrary chunk boundaries.
//
// Frame kinds:
//   kHello    — first frame on every outbound connection: protocol version +
//               the node ids hosted by the connecting process, so the
//               acceptor can route replies before any message flows.
//   kMessage  — one routed wire message: (from, to) node ids followed by
//               Message::encode() bytes.  from/to travel per frame because
//               one connection multiplexes every node pair between two
//               processes.
//   kPing/kPong — transport-level liveness probes for idle connections.
//
// Decoding is strict, mirroring Message::decode(): an unknown kind, a bad
// hello version, an over-limit length, or trailing bytes inside a frame body
// all mark the stream corrupt, and the connection owning it must be torn
// down (a framing error leaves no way to find the next frame boundary).
#pragma once

#include <cstdint>
#include <vector>

#include "serial/message.h"
#include "util/bytes.h"
#include "util/context.h"
#include "util/ids.h"

namespace corona::net {

enum class FrameKind : std::uint8_t {
  kHello = 1,
  kMessage = 2,
  kPing = 3,
  kPong = 4,
};

// Version byte carried by kHello; bumped on incompatible framing changes.
constexpr std::uint8_t kFrameProtocolVersion = 1;

// Length prefix size on the wire.
constexpr std::size_t kFrameLengthBytes = 4;

// Default ceiling on (kind + body) size.  Generous enough for a full-state
// join reply, small enough that a garbage length prefix cannot make the
// decoder buffer gigabytes before noticing.
constexpr std::size_t kDefaultMaxFrameBytes = 64 * 1024 * 1024;

// One decoded frame.  Fields are populated according to `kind`.
struct Frame {
  FrameKind kind = FrameKind::kMessage;
  std::vector<NodeId> hello_nodes;  // kHello: node ids behind the connection
  NodeId from;                      // kMessage
  NodeId to;                        // kMessage
  Bytes message_wire;               // kMessage: Message::encode() bytes
};

[[nodiscard]] Bytes encode_hello_frame(const std::vector<NodeId>& local_nodes);
[[nodiscard]] CORONA_HOT_PATH Bytes encode_message_frame(
    NodeId from, NodeId to, BytesView message_wire);
[[nodiscard]] Bytes encode_ping_frame();
[[nodiscard]] Bytes encode_pong_frame();

// Incremental reassembler.  feed() raw stream chunks in arrival order, then
// drain complete frames with next() until it reports kNeedMore.  Once the
// stream is corrupt the decoder stays corrupt: framing errors are not
// recoverable mid-stream.
class FrameDecoder {
 public:
  enum class Next { kFrame, kNeedMore, kCorrupt };

  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n);
  void feed(BytesView chunk) { feed(chunk.data(), chunk.size()); }

  // Extracts the next complete frame into *out.  kNeedMore leaves *out
  // untouched; kCorrupt is terminal.  Dropping the verdict would lose the
  // corrupt-stream signal, so it is nodiscard.
  [[nodiscard]] Next next(Frame* out);

  bool corrupt() const { return corrupt_; }
  std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  Next parse_body(BytesView body, Frame* out);

  std::size_t max_frame_bytes_;
  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool corrupt_ = false;
};

}  // namespace corona::net
