#include "net/frame.h"

#include "serial/decoder.h"
#include "serial/encoder.h"

namespace corona::net {

namespace {

// Prepends the 4-byte little-endian length to (kind + body).
// Frame codec: every FrameKind must be encodable and decodable here.
// lint-dispatch: FrameKind
Bytes finish_frame(FrameKind kind, const Bytes& body) {
  const std::size_t len = 1 + body.size();
  Bytes out;
  out.reserve(kFrameLengthBytes + len);
  out.push_back(static_cast<std::uint8_t>(len & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((len >> 24) & 0xff));
  out.push_back(static_cast<std::uint8_t>(kind));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

Bytes encode_hello_frame(const std::vector<NodeId>& local_nodes) {
  Encoder e;
  e.put_u8(kFrameProtocolVersion);
  e.put_u64(local_nodes.size());
  for (NodeId id : local_nodes) e.put_u64(id.value);
  return finish_frame(FrameKind::kHello, e.buffer());
}

Bytes encode_message_frame(NodeId from, NodeId to, BytesView message_wire) {
  Encoder e;
  e.put_u64(from.value);
  e.put_u64(to.value);
  Bytes body = e.take();
  body.reserve(body.size() + message_wire.size());
  body.insert(body.end(), message_wire.begin(), message_wire.end());
  return finish_frame(FrameKind::kMessage, body);
}

Bytes encode_ping_frame() { return finish_frame(FrameKind::kPing, {}); }
Bytes encode_pong_frame() { return finish_frame(FrameKind::kPong, {}); }

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (corrupt_ || n == 0) return;
  // Compact once the consumed prefix dominates, so the buffer does not grow
  // without bound across a long-lived connection.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Next FrameDecoder::next(Frame* out) {
  if (corrupt_) return Next::kCorrupt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameLengthBytes) return Next::kNeedMore;

  const std::size_t len = static_cast<std::size_t>(buf_[pos_]) |
                          static_cast<std::size_t>(buf_[pos_ + 1]) << 8 |
                          static_cast<std::size_t>(buf_[pos_ + 2]) << 16 |
                          static_cast<std::size_t>(buf_[pos_ + 3]) << 24;
  // A frame is at least the kind byte; the ceiling catches garbage prefixes
  // before they make us buffer an absurd amount of stream.
  if (len < 1 || len > max_frame_bytes_) {
    corrupt_ = true;
    return Next::kCorrupt;
  }
  if (avail < kFrameLengthBytes + len) return Next::kNeedMore;

  const BytesView body(buf_.data() + pos_ + kFrameLengthBytes + 1, len - 1);
  const auto kind_byte = buf_[pos_ + kFrameLengthBytes];
  pos_ += kFrameLengthBytes + len;

  Frame frame;
  switch (static_cast<FrameKind>(kind_byte)) {
    case FrameKind::kHello:
    case FrameKind::kMessage:
    case FrameKind::kPing:
    case FrameKind::kPong:
      frame.kind = static_cast<FrameKind>(kind_byte);
      break;
    default:
      corrupt_ = true;
      return Next::kCorrupt;
  }
  const Next result = parse_body(body, &frame);
  if (result == Next::kFrame) *out = std::move(frame);
  return result;
}

FrameDecoder::Next FrameDecoder::parse_body(BytesView body, Frame* out) {
  switch (out->kind) {
    case FrameKind::kHello: {
      Decoder d(body);
      const std::uint8_t version = d.get_u8();
      const std::uint64_t n = d.get_u64();
      // The count is bounded by the bytes actually present (each id is at
      // least one varint byte), so a lying count cannot trigger a huge
      // allocation.
      if (!d.ok() || version != kFrameProtocolVersion || n > d.remaining()) {
        corrupt_ = true;
        return Next::kCorrupt;
      }
      out->hello_nodes.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        out->hello_nodes.push_back(NodeId{d.get_u64()});
      }
      if (!d.ok() || !d.at_end()) {
        corrupt_ = true;
        return Next::kCorrupt;
      }
      return Next::kFrame;
    }
    case FrameKind::kMessage: {
      Decoder d(body);
      out->from = NodeId{d.get_u64()};
      out->to = NodeId{d.get_u64()};
      if (!d.ok()) {
        corrupt_ = true;
        return Next::kCorrupt;
      }
      // The rest of the body is the encoded Message.  Its own strict decode
      // (version, truncation, trailing bytes) runs at the dispatch layer.
      const std::size_t consumed = body.size() - d.remaining();
      out->message_wire.assign(body.begin() +
                                   static_cast<std::ptrdiff_t>(consumed),
                               body.end());
      return Next::kFrame;
    }
    case FrameKind::kPing:
    case FrameKind::kPong:
      if (!body.empty()) {
        corrupt_ = true;
        return Next::kCorrupt;
      }
      return Next::kFrame;
  }
  corrupt_ = true;
  return Next::kCorrupt;
}

}  // namespace corona::net
