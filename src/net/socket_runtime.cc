#include "net/socket_runtime.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace corona::net {

using std::chrono::microseconds;
using std::chrono::steady_clock;

namespace {

// Request/reply protocols like Corona's are latency-bound and frames are
// already batched by the write queue, so Nagle only adds delay.
void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

SocketRuntime::SocketRuntime(SocketRuntimeConfig cfg)
    : cfg_(cfg), epoch_(steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  assert(epoll_fd_ >= 0 && "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  assert(wake_fd_ >= 0 && "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

SocketRuntime::~SocketRuntime() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void SocketRuntime::add_node(NodeId id, Node* node) {
  assert(!started_.load() && "add_node after start");
  assert(node != nullptr);
  node->bind(this, id);
  [[maybe_unused]] const auto [it, inserted] = nodes_.emplace(id, node);
  assert(inserted && "duplicate node id");
}

void SocketRuntime::set_peer_address(NodeId id, Endpoint ep) {
  assert(!started_.load() && "set_peer_address after start");
  Peer peer;
  peer.addr = std::move(ep);
  peers_.insert_or_assign(id, std::move(peer));
}

void SocketRuntime::set_address_book(const AddressBook& book) {
  for (const auto& [id, ep] : book) set_peer_address(id, ep);
}

Result<std::uint16_t> SocketRuntime::listen(const std::string& host,
                                            std::uint16_t port) {
  assert(!started_.load() && "listen after start");
  if (listen_fd_ >= 0) {
    return Status::error(Errc::kAlreadyExists, "already listening");
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.empty() ? nullptr : host.c_str(), port_str.c_str(),
                    &hints, &res) != 0 ||
      res == nullptr) {
    return Status::error(Errc::kInvalidArgument,
                         "cannot resolve listen address: " + host);
  }
  const int fd =
      ::socket(res->ai_family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Status::error(Errc::kUnavailable, "socket() failed");
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const int bound = ::bind(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (bound != 0 || ::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::error(
        Errc::kUnavailable,
        std::string("bind/listen failed: ") + std::strerror(err));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
    ::close(fd);
    return Status::error(Errc::kUnavailable, "getsockname failed");
  }
  listen_fd_ = fd;
  listen_port_ = ntohs(actual.sin_port);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  return listen_port_;
}

void SocketRuntime::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  loop_thread_ = std::thread([this] { loop(); });
}

void SocketRuntime::stop() {
  stopping_.store(true);
  if (loop_thread_.joinable()) {
    wake();
    loop_thread_.join();
  }
  for (auto& [fd, conn] : conns_) {
    (void)conn;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
  }
  conns_.clear();
  routes_.clear();
  timers_.clear();
  timer_index_.clear();
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void SocketRuntime::drop_connection(NodeId peer) {
  Op op;
  op.kind = Op::Kind::kDrop;
  op.to = peer;
  {
    MutexLock lock(mu_);
    ops_.push_back(std::move(op));
  }
  wake();
}

SocketRuntime::Stats SocketRuntime::stats() const {
  Stats s;
  s.frames_sent = counters_.frames_sent.load();
  s.frames_received = counters_.frames_received.load();
  s.bytes_sent = counters_.bytes_sent.load();
  s.bytes_received = counters_.bytes_received.load();
  s.connects_attempted = counters_.connects_attempted.load();
  s.connects_ok = counters_.connects_ok.load();
  s.accepts = counters_.accepts.load();
  s.disconnects = counters_.disconnects.load();
  s.reconnects_scheduled = counters_.reconnects_scheduled.load();
  s.corrupt_frames = counters_.corrupt_frames.load();
  s.messages_dropped = counters_.messages_dropped.load();
  s.pings_sent = counters_.pings_sent.load();
  s.writev_calls = counters_.writev_calls.load();
  s.frames_coalesced = counters_.frames_coalesced.load();
  return s;
}

TimePoint SocketRuntime::now() const {
  return std::chrono::duration_cast<microseconds>(steady_clock::now() - epoch_)
      .count();
}

void SocketRuntime::send(NodeId from, NodeId to, const Message& m) {
  if (stopping_.load()) {
    counters_.messages_dropped.fetch_add(1);
    return;
  }
  Op op;
  op.kind = Op::Kind::kSend;
  op.from = from;
  op.to = to;
  op.wire = m.encode();
  {
    MutexLock lock(mu_);
    ops_.push_back(std::move(op));
  }
  wake();
}

void SocketRuntime::send_batch(NodeId from, NodeId to,
                               const std::vector<Message>& ms) {
  if (ms.empty()) return;
  if (ms.size() == 1) {
    send(from, to, ms.front());
    return;
  }
  if (stopping_.load()) {
    counters_.messages_dropped.fetch_add(ms.size());
    return;
  }
  Op op;
  op.kind = Op::Kind::kSendBatch;
  op.from = from;
  op.to = to;
  op.wires.reserve(ms.size());
  for (const Message& m : ms) op.wires.push_back(m.encode());
  {
    MutexLock lock(mu_);
    ops_.push_back(std::move(op));
  }
  wake();
}

void SocketRuntime::fanout(NodeId from, const std::vector<NodeId>& to,
                           const Message& m) {
  if (to.empty()) return;
  if (to.size() == 1) {
    send(from, to.front(), m);
    return;
  }
  if (stopping_.load()) {
    counters_.messages_dropped.fetch_add(to.size());
    return;
  }
  Op op;
  op.kind = Op::Kind::kFanout;
  op.from = from;
  op.wire = m.encode();
  op.targets = to;
  {
    MutexLock lock(mu_);
    ops_.push_back(std::move(op));
  }
  wake();
}

TimerHandle SocketRuntime::set_timer(NodeId owner, Duration delay,
                                     std::uint64_t tag) {
  const TimerHandle handle = next_timer_.fetch_add(1);
  Op op;
  op.kind = Op::Kind::kSetTimer;
  op.to = owner;
  op.handle = handle;
  op.deadline = now() + std::max<Duration>(delay, 0);
  op.tag = tag;
  {
    MutexLock lock(mu_);
    ops_.push_back(std::move(op));
  }
  wake();
  return handle;
}

void SocketRuntime::cancel_timer(TimerHandle handle) {
  Op op;
  op.kind = Op::Kind::kCancelTimer;
  op.handle = handle;
  {
    MutexLock lock(mu_);
    ops_.push_back(std::move(op));
  }
  wake();
}

void SocketRuntime::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

// ---------------------------------------------------------------------------
// Event loop.  Everything below runs on the loop thread only.
// ---------------------------------------------------------------------------

void SocketRuntime::loop() {
  for (auto& [id, node] : nodes_) {
    (void)id;
    node->on_start();
  }
  // Dial every book peer not hosted locally; redialed forever on failure.
  for (auto& [id, peer] : peers_) {
    if (!nodes_.contains(id)) start_connect(id, peer);
  }

  std::vector<epoll_event> events(64);
  while (!stopping_.load()) {
    drain_ops();
    reap_dead();
    if (stopping_.load()) break;

    const TimePoint t = now();
    for (auto& [id, peer] : peers_) {
      if (peer.fd < 0 && peer.next_connect_at && *peer.next_connect_at <= t) {
        peer.next_connect_at.reset();
        start_connect(id, peer);
      }
    }
    fire_due_timers();
    sweep_keepalive();
    drain_ops();  // timer handlers usually queued sends; flush them now
    reap_dead();

    const Duration delay = next_wakeup_delay();
    const int timeout_ms =
        delay <= 0
            ? 0
            : static_cast<int>(std::min<Duration>((delay + 999) / 1000, 200));
    const int nfds = ::epoll_wait(epoll_fd_, events.data(),
                                  static_cast<int>(events.size()), timeout_ms);
    for (int i = 0; i < nfds; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& c = *it->second;
      if (c.dead) continue;
      if (ev & EPOLLIN) on_readable(c);
      if (!c.dead && (ev & EPOLLOUT)) {
        if (c.outbound && !c.open) {
          on_connect_ready(c);
        } else {
          flush_conn(c);
        }
      }
      if (!c.dead && (ev & (EPOLLERR | EPOLLHUP))) {
        if (c.outbound && !c.open) {
          on_connect_ready(c);  // reads SO_ERROR and fails the dial
        } else {
          mark_dead(c);
        }
      }
    }
    reap_dead();
  }
}

void SocketRuntime::drain_ops() {
  while (true) {
    std::deque<Op> batch;
    {
      MutexLock lock(mu_);
      if (ops_.empty()) return;
      batch.swap(ops_);
    }
    for (Op& op : batch) {
      switch (op.kind) {
        case Op::Kind::kSend:
          apply_send(op.from, op.to, std::move(op.wire));
          break;
        case Op::Kind::kSendBatch:
          apply_send_batch(op.from, op.to, std::move(op.wires));
          break;
        case Op::Kind::kFanout:
          // Expands to per-target deliveries on the loop thread; the last
          // target takes the shared wire buffer by move.
          for (std::size_t i = 0; i < op.targets.size(); ++i) {
            const bool last = i + 1 == op.targets.size();
            apply_send(op.from, op.targets[i],
                       last ? std::move(op.wire) : op.wire);
          }
          break;
        case Op::Kind::kSetTimer:
          timers_[{op.deadline, op.handle}] = TimerRec{op.to, op.tag};
          timer_index_[op.handle] = op.deadline;
          break;
        case Op::Kind::kCancelTimer: {
          const auto it = timer_index_.find(op.handle);
          if (it != timer_index_.end()) {
            timers_.erase({it->second, op.handle});
            timer_index_.erase(it);
          }
          break;
        }
        case Op::Kind::kDrop: {
          const auto it = routes_.find(op.to);
          if (it != routes_.end()) {
            const auto cit = conns_.find(it->second);
            if (cit != conns_.end()) mark_dead(*cit->second);
          }
          break;
        }
      }
    }
  }
}

void SocketRuntime::apply_send(NodeId from, NodeId to, Bytes wire) {
  // Loopback fast path: receiver lives in this process.  The encode/decode
  // round trip still happened (wire was encoded inside send()), preserving
  // the value-isolation the other engines give.
  if (const auto it = nodes_.find(to); it != nodes_.end()) {
    auto decoded = Message::decode(wire);
    if (!decoded.is_ok()) {
      counters_.corrupt_frames.fetch_add(1);
      return;
    }
    it->second->on_message(from, decoded.value());
    return;
  }

  Bytes frame = encode_message_frame(from, to, wire);
  if (const auto r = routes_.find(to); r != routes_.end()) {
    const auto cit = conns_.find(r->second);
    if (cit != conns_.end() && !cit->second->dead) {
      Conn& c = *cit->second;
      queue_on_conn(c, std::move(frame));
      if (c.open) flush_conn(c);
      return;
    }
  }
  const auto pit = peers_.find(to);
  if (pit == peers_.end()) {
    // No live route and no way to dial: the documented lossy-send case.
    counters_.messages_dropped.fetch_add(1);
    return;
  }
  Peer& peer = pit->second;
  if (peer.fd >= 0) {
    // A dial is in flight; queue on that connection, flushed once open.
    const auto cit = conns_.find(peer.fd);
    if (cit != conns_.end() && !cit->second->dead) {
      queue_on_conn(*cit->second, std::move(frame));
      return;
    }
  }
  if (peer.pending_bytes + frame.size() > cfg_.max_conn_queue_bytes) {
    counters_.messages_dropped.fetch_add(1);
    return;
  }
  peer.pending_bytes += frame.size();
  peer.pending.push_back(std::move(frame));
  if (peer.fd < 0 && !peer.next_connect_at) start_connect(to, peer);
}

void SocketRuntime::apply_send_batch(NodeId from, NodeId to,
                                     std::vector<Bytes> wires) {
  // Loopback: the run surfaces back-to-back, in send order.
  if (const auto it = nodes_.find(to); it != nodes_.end()) {
    for (const Bytes& wire : wires) {
      auto decoded = Message::decode(wire);
      if (!decoded.is_ok()) {
        counters_.corrupt_frames.fetch_add(1);
        continue;
      }
      it->second->on_message(from, decoded.value());
    }
    return;
  }

  std::vector<Bytes> frames;
  frames.reserve(wires.size());
  std::size_t total = 0;
  for (const Bytes& wire : wires) {
    frames.push_back(encode_message_frame(from, to, wire));
    total += frames.back().size();
  }

  if (const auto r = routes_.find(to); r != routes_.end()) {
    const auto cit = conns_.find(r->second);
    if (cit != conns_.end() && !cit->second->dead) {
      Conn& c = *cit->second;
      // The batch queues atomically: either the whole run fits under the
      // cap or none of it does (a shed batch never leaves a gapped suffix).
      if (c.outq_bytes + total > cfg_.max_conn_queue_bytes) {
        counters_.messages_dropped.fetch_add(frames.size());
        return;
      }
      for (Bytes& frame : frames) {
        c.outq_bytes += frame.size();
        c.outq.push_back(std::move(frame));
      }
      if (c.open) flush_conn(c);  // one gathered flush covers the run
      return;
    }
  }
  const auto pit = peers_.find(to);
  if (pit == peers_.end()) {
    counters_.messages_dropped.fetch_add(frames.size());
    return;
  }
  Peer& peer = pit->second;
  if (peer.fd >= 0) {
    const auto cit = conns_.find(peer.fd);
    if (cit != conns_.end() && !cit->second->dead) {
      Conn& c = *cit->second;
      if (c.outq_bytes + total > cfg_.max_conn_queue_bytes) {
        counters_.messages_dropped.fetch_add(frames.size());
        return;
      }
      for (Bytes& frame : frames) {
        c.outq_bytes += frame.size();
        c.outq.push_back(std::move(frame));
      }
      return;
    }
  }
  if (peer.pending_bytes + total > cfg_.max_conn_queue_bytes) {
    counters_.messages_dropped.fetch_add(frames.size());
    return;
  }
  for (Bytes& frame : frames) {
    peer.pending_bytes += frame.size();
    peer.pending.push_back(std::move(frame));
  }
  if (peer.fd < 0 && !peer.next_connect_at) start_connect(to, peer);
}

void SocketRuntime::queue_on_conn(Conn& c, Bytes frame) {
  if (c.outq_bytes + frame.size() > cfg_.max_conn_queue_bytes) {
    counters_.messages_dropped.fetch_add(1);
    return;
  }
  c.outq_bytes += frame.size();
  c.outq.push_back(std::move(frame));
}

void SocketRuntime::flush_conn(Conn& c) {
  if (!c.open || c.dead) return;
  // Gathered writes: every queued frame (up to the iovec cap) goes out in
  // one writev, so a coalesced batch costs one syscall instead of one per
  // frame.  Partial writes leave wip_off pointing into the first unsent
  // frame, exactly as the per-frame loop did.
  static constexpr std::size_t kMaxIov = 64;
  while (!c.outq.empty()) {
    iovec iov[kMaxIov];
    std::size_t niov = 0;
    for (auto it = c.outq.begin(); it != c.outq.end() && niov < kMaxIov;
         ++it) {
      const std::size_t off = niov == 0 ? c.wip_off : 0;
      iov[niov].iov_base = it->data() + off;
      iov[niov].iov_len = it->size() - off;
      ++niov;
    }
    // sendmsg == writev + MSG_NOSIGNAL (a peer that closed mid-batch must
    // surface as EPIPE on this thread, not kill the process).
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = niov;
    const ssize_t n = ::sendmsg(c.fd, &mh, MSG_NOSIGNAL);
    if (n > 0) {
      counters_.bytes_sent.fetch_add(static_cast<std::uint64_t>(n));
      counters_.writev_calls.fetch_add(1);
      c.last_tx = now();
      std::size_t left = static_cast<std::size_t>(n);
      std::uint64_t completed = 0;
      while (left > 0 && !c.outq.empty()) {
        const std::size_t remain = c.outq.front().size() - c.wip_off;
        if (left >= remain) {
          left -= remain;
          c.outq_bytes -= c.outq.front().size();
          c.outq.pop_front();
          c.wip_off = 0;
          counters_.frames_sent.fetch_add(1);
          ++completed;
        } else {
          c.wip_off += left;
          left = 0;
        }
      }
      if (niov > 1) counters_.frames_coalesced.fetch_add(completed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    mark_dead(c);
    return;
  }
  update_epoll(c, !c.outq.empty());
}

void SocketRuntime::update_epoll(Conn& c, bool want_write) {
  if (c.dead || want_write == c.want_write) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  c.want_write = want_write;
}

void SocketRuntime::start_connect(NodeId peer_id, Peer& peer) {
  counters_.connects_attempted.fetch_add(1);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(peer.addr.port);
  if (::getaddrinfo(peer.addr.host.c_str(), port_str.c_str(), &hints, &res) !=
          0 ||
      res == nullptr) {
    schedule_reconnect(peer_id, peer);
    return;
  }
  const int fd =
      ::socket(res->ai_family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    ::freeaddrinfo(res);
    schedule_reconnect(peer_id, peer);
    return;
  }
  set_nodelay(fd);
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    schedule_reconnect(peer_id, peer);
    return;
  }
  auto conn = std::make_unique<Conn>(cfg_.max_frame_bytes);
  conn->fd = fd;
  conn->outbound = true;
  conn->target = peer_id;
  conn->last_rx = conn->last_tx = now();
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;  // EPOLLOUT signals connect completion
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  conn->want_write = true;
  peer.fd = fd;
  conns_[fd] = std::move(conn);
}

void SocketRuntime::schedule_reconnect(NodeId peer_id, Peer& peer) {
  (void)peer_id;
  peer.fd = -1;
  peer.backoff = peer.backoff == 0
                     ? cfg_.reconnect_backoff_min
                     : std::min(peer.backoff * 2, cfg_.reconnect_backoff_max);
  peer.next_connect_at = now() + peer.backoff;
  counters_.reconnects_scheduled.fetch_add(1);
}

void SocketRuntime::on_connect_ready(Conn& c) {
  int err = 0;
  socklen_t len = sizeof(err);
  ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
  if (err != 0) {
    mark_dead(c);
    return;
  }
  c.open = true;
  counters_.connects_ok.fetch_add(1);
  std::vector<NodeId> local;
  local.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    (void)node;
    local.push_back(id);
  }
  // The hello goes ahead of any traffic queued while connecting.
  Bytes hello = encode_hello_frame(local);
  c.outq_bytes += hello.size();
  c.outq.push_front(std::move(hello));
  const auto pit = peers_.find(c.target);
  if (pit != peers_.end()) {
    Peer& peer = pit->second;
    peer.backoff = 0;
    peer.next_connect_at.reset();
    while (!peer.pending.empty()) {
      queue_on_conn(c, std::move(peer.pending.front()));
      peer.pending.pop_front();
    }
    peer.pending_bytes = 0;
  }
  routes_[c.target] = c.fd;
  c.claims.insert(c.target);
  flush_conn(c);
}

void SocketRuntime::on_readable(Conn& c) {
  bool eof = false;
  std::uint8_t buf[65536];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      counters_.bytes_received.fetch_add(static_cast<std::uint64_t>(n));
      c.last_rx = now();
      c.decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;
    break;
  }
  // Dispatch every complete frame that arrived — data already received is
  // valid even when the stream just ended behind it.
  Frame frame;
  while (!c.dead) {
    const FrameDecoder::Next r = c.decoder.next(&frame);
    if (r == FrameDecoder::Next::kNeedMore) break;
    if (r == FrameDecoder::Next::kCorrupt) {
      counters_.corrupt_frames.fetch_add(1);
      mark_dead(c);
      return;
    }
    handle_frame(c, std::move(frame));
  }
  if (eof && !c.dead) mark_dead(c);
}

// Frame-loop dispatch surface: every FrameKind must be handled below.
// lint-dispatch: FrameKind
void SocketRuntime::handle_frame(Conn& c, Frame frame) {
  counters_.frames_received.fetch_add(1);
  switch (frame.kind) {
    case FrameKind::kHello:
      for (const NodeId id : frame.hello_nodes) {
        routes_[id] = c.fd;
        c.claims.insert(id);
      }
      break;
    case FrameKind::kMessage: {
      // Refresh the route: after a reconnect the newest connection wins.
      routes_[frame.from] = c.fd;
      c.claims.insert(frame.from);
      const auto it = nodes_.find(frame.to);
      if (it == nodes_.end()) {
        counters_.messages_dropped.fetch_add(1);
        break;
      }
      auto decoded = Message::decode(frame.message_wire);
      if (!decoded.is_ok()) {
        counters_.corrupt_frames.fetch_add(1);
        mark_dead(c);
        return;
      }
      it->second->on_message(frame.from, decoded.value());
      break;
    }
    case FrameKind::kPing:
      queue_on_conn(c, encode_pong_frame());
      flush_conn(c);
      break;
    case FrameKind::kPong:
      break;  // last_rx was already refreshed by the read
  }
}

void SocketRuntime::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: retry on next event
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>(cfg_.max_frame_bytes);
    conn->fd = fd;
    conn->outbound = false;
    conn->open = true;
    conn->last_rx = conn->last_tx = now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_[fd] = std::move(conn);
    counters_.accepts.fetch_add(1);
  }
}

void SocketRuntime::reap_dead() {
  std::vector<int> dead;
  for (const auto& [fd, conn] : conns_) {
    if (conn->dead) dead.push_back(fd);
  }
  for (const int fd : dead) close_conn(fd, /*schedule_redial=*/true);
}

void SocketRuntime::close_conn(int fd, bool schedule_redial) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  for (const NodeId id : c.claims) {
    const auto r = routes_.find(id);
    if (r != routes_.end() && r->second == fd) routes_.erase(r);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  counters_.disconnects.fetch_add(1);
  if (c.outbound) {
    const auto pit = peers_.find(c.target);
    if (pit != peers_.end() && pit->second.fd == fd) {
      Peer& peer = pit->second;
      if (!c.open) {
        // The dial never completed, so the peer saw none of these frames;
        // put them back behind any older pending traffic to survive the
        // redial.  (An open connection that dies keeps the lossy-send
        // contract: its queue is dropped and sequenced traffic is recovered
        // by the protocol's retransmission path.)
        while (!c.outq.empty()) {
          Bytes& frame = c.outq.front();
          if (peer.pending_bytes + frame.size() <= cfg_.max_conn_queue_bytes) {
            peer.pending_bytes += frame.size();
            peer.pending.push_back(std::move(frame));
          } else {
            counters_.messages_dropped.fetch_add(1);
          }
          c.outq.pop_front();
        }
      }
      if (schedule_redial && !stopping_.load()) {
        schedule_reconnect(c.target, peer);
      } else {
        peer.fd = -1;
      }
    }
  }
  conns_.erase(it);
}

void SocketRuntime::fire_due_timers() {
  const TimePoint t = now();
  while (!timers_.empty() && timers_.begin()->first.first <= t) {
    const auto [key, rec] = *timers_.begin();
    timers_.erase(timers_.begin());
    timer_index_.erase(key.second);
    const auto it = nodes_.find(rec.owner);
    if (it != nodes_.end()) it->second->on_timer(rec.tag);
  }
}

void SocketRuntime::sweep_keepalive() {
  if (cfg_.keepalive_interval <= 0 && cfg_.peer_silence_timeout <= 0) return;
  const TimePoint t = now();
  // Sweep at a fraction of the smallest configured interval.
  Duration cadence = cfg_.keepalive_interval > 0 ? cfg_.keepalive_interval
                                                 : cfg_.peer_silence_timeout;
  if (cfg_.peer_silence_timeout > 0) {
    cadence = std::min(cadence, cfg_.peer_silence_timeout);
  }
  cadence = std::max<Duration>(cadence / 4, kMillisecond);
  if (t - last_keepalive_sweep_ < cadence) return;
  last_keepalive_sweep_ = t;

  for (auto& [fd, conn] : conns_) {
    (void)fd;
    Conn& c = *conn;
    if (!c.open || c.dead) continue;
    if (cfg_.peer_silence_timeout > 0 &&
        t - c.last_rx > cfg_.peer_silence_timeout) {
      mark_dead(c);
      continue;
    }
    if (cfg_.keepalive_interval > 0 &&
        t - c.last_tx >= cfg_.keepalive_interval) {
      queue_on_conn(c, encode_ping_frame());
      counters_.pings_sent.fetch_add(1);
      flush_conn(c);
    }
  }
}

Duration SocketRuntime::next_wakeup_delay() const {
  {
    MutexLock lock(mu_);
    if (!ops_.empty()) return 0;
  }
  Duration delay = 200 * kMillisecond;
  const TimePoint t = now();
  if (!timers_.empty()) {
    delay = std::min(delay, timers_.begin()->first.first - t);
  }
  for (const auto& [id, peer] : peers_) {
    (void)id;
    if (peer.fd < 0 && peer.next_connect_at) {
      delay = std::min(delay, *peer.next_connect_at - t);
    }
  }
  if (cfg_.keepalive_interval > 0 || cfg_.peer_silence_timeout > 0) {
    delay = std::min(delay, 10 * kMillisecond);
  }
  return delay;
}

}  // namespace corona::net
